package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	amber "repro"
)

const townData = `
@prefix g: <http://town/> .
g:alice g:knows g:bob .
g:alice g:knows g:carol .
g:bob   g:knows g:carol .
g:alice g:livesIn g:springfield .
g:bob   g:livesIn g:springfield .
g:carol g:livesIn g:shelbyville .
g:springfield g:hasName "Springfield" .
`

const knowsQuery = `SELECT ?a ?b WHERE { ?a <http://town/knows> ?b . }`

func openDB(t testing.TB, data string) *amber.DB {
	t.Helper()
	db, err := amber.OpenString(data)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// newTestServer starts a real HTTP server around a Server built on data.
func newTestServer(t testing.TB, data string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(openDB(t, data), cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t testing.TB, rawURL string, header http.Header) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, rawURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func queryURL(base, query string, extra ...string) string {
	v := url.Values{"query": {query}}
	for i := 0; i+1 < len(extra); i += 2 {
		v.Set(extra[i], extra[i+1])
	}
	return base + "/sparql?" + v.Encode()
}

func TestAllResultFormats(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	cases := []struct {
		accept, wantCT, wantFrag string
	}{
		{"application/sparql-results+json", "application/sparql-results+json", `"type":"uri","value":"http://town/bob"`},
		{"application/sparql-results+xml", "application/sparql-results+xml", `<uri>http://town/bob</uri>`},
		{"text/csv", "text/csv", "http://town/alice,http://town/bob"},
		{"text/tab-separated-values", "text/tab-separated-values", "<http://town/alice>\t<http://town/bob>"},
	}
	for _, c := range cases {
		resp, body := get(t, queryURL(ts.URL, knowsQuery), http.Header{"Accept": {c.accept}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("Accept %s: status %d: %s", c.accept, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, c.wantCT) {
			t.Errorf("Accept %s: Content-Type %q", c.accept, ct)
		}
		if !strings.Contains(body, c.wantFrag) {
			t.Errorf("Accept %s: body missing %q:\n%s", c.accept, c.wantFrag, body)
		}
		// All three ?knows edges appear regardless of format.
		if n := strings.Count(body, "carol"); n < 2 {
			t.Errorf("Accept %s: want 2 carol rows, got %d:\n%s", c.accept, n, body)
		}
	}
}

func TestFormatParamOverridesAccept(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	resp, body := get(t, queryURL(ts.URL, knowsQuery, "format", "csv"),
		http.Header{"Accept": {"application/sparql-results+json"}})
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/csv") {
		t.Fatalf("status %d, Content-Type %q: %s", resp.StatusCode, resp.Header.Get("Content-Type"), body)
	}
}

func TestContentNegotiationQValues(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	resp, _ := get(t, queryURL(ts.URL, knowsQuery),
		http.Header{"Accept": {"text/html, application/sparql-results+xml;q=0.9, */*;q=0.1"}})
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/sparql-results+xml") {
		t.Errorf("q-value negotiation picked %q, want XML", ct)
	}
	resp, _ = get(t, queryURL(ts.URL, knowsQuery), http.Header{"Accept": {"image/png"}})
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Errorf("unsupported Accept: status %d, want 406", resp.StatusCode)
	}
}

func TestPostForms(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})

	resp, err := http.PostForm(ts.URL+"/sparql", url.Values{"query": {knowsQuery}})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "bob") {
		t.Fatalf("form POST: status %d: %s", resp.StatusCode, body)
	}

	resp, err = http.Post(ts.URL+"/sparql", "application/sparql-query", strings.NewReader(knowsQuery))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "bob") {
		t.Fatalf("sparql-query POST: status %d: %s", resp.StatusCode, body)
	}

	// application/sparql-update is accepted since the live-update
	// subsystem; malformed update text maps to 400.
	resp, err = http.Post(ts.URL+"/sparql", "application/sparql-update", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad update: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/sparql", "text/plain", strings.NewReader(knowsQuery))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("unsupported media type: status %d, want 415", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/sparql", strings.NewReader(knowsQuery))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT: status %d, want 405", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	for name, u := range map[string]string{
		"missing query":  ts.URL + "/sparql",
		"syntax error":   queryURL(ts.URL, "SELECT WHERE {"),
		"bad limit":      queryURL(ts.URL, knowsQuery, "limit", "x"),
		"bad timeout":    queryURL(ts.URL, knowsQuery, "timeout", "soon"),
		"unknown format": queryURL(ts.URL, knowsQuery, "format", "yaml"),
	} {
		resp, body := get(t, u, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %s", name, body)
		}
	}
	resp, _ := get(t, ts.URL+"/nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d, want 404", resp.StatusCode)
	}
}

func TestLimitParam(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	resp, body := get(t, queryURL(ts.URL, knowsQuery, "limit", "1", "format", "csv"), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 { // header + 1 row
		t.Errorf("limit=1 returned %d lines:\n%s", len(lines), body)
	}
}

func TestCacheHitMiss(t *testing.T) {
	s, ts := newTestServer(t, townData, Config{})

	resp, body1 := get(t, queryURL(ts.URL, knowsQuery), nil)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q, want miss", got)
	}
	resp, body2 := get(t, queryURL(ts.URL, knowsQuery), nil)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second request X-Cache = %q, want hit", got)
	}
	if body1 != body2 {
		t.Errorf("cached body differs:\n%s\nvs\n%s", body1, body2)
	}

	// The same query reformatted with insignificant whitespace still hits.
	spaced := "SELECT  ?a   ?b\nWHERE {\n  ?a <http://town/knows> ?b .\n}"
	resp, _ = get(t, queryURL(ts.URL, spaced), nil)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("reformatted query X-Cache = %q, want hit", got)
	}

	// A different limit is a different result: miss.
	resp, _ = get(t, queryURL(ts.URL, knowsQuery, "limit", "1"), nil)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("different limit X-Cache = %q, want miss", got)
	}

	// A different format of a cached result is still a hit (rows are
	// cached format-independently).
	resp, _ = get(t, queryURL(ts.URL, knowsQuery, "format", "tsv"), nil)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("other format X-Cache = %q, want hit", got)
	}

	st := s.Stats()
	if st.CacheHits < 2 || st.CacheMisses < 2 {
		t.Errorf("stats: hits=%d misses=%d, want ≥2 each", st.CacheHits, st.CacheMisses)
	}
	// Distinct limits produce distinct result-cache entries, but the plan
	// depends only on query text: exactly one plan for all of the above.
	if st.ResultCacheEntries < 2 || st.PlanCacheEntries != 1 {
		t.Errorf("stats: result entries=%d plan entries=%d, want ≥2 and exactly 1", st.ResultCacheEntries, st.PlanCacheEntries)
	}
}

func TestTimeoutZeroKeepsDefault(t *testing.T) {
	s := New(openDB(t, townData), Config{DefaultTimeout: 7 * time.Second})
	req := httptest.NewRequest(http.MethodGet, "/sparql?timeout=0", nil)
	p, err := s.readParams(req)
	if err != nil {
		t.Fatal(err)
	}
	// timeout=0 must not disable the deadline: a query would hold an
	// execution slot forever.
	if p.opts.Timeout != 7*time.Second {
		t.Errorf("timeout=0 yields %v, want the 7s default", p.opts.Timeout)
	}
}

func TestCacheDisabled(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{CacheSize: -1})
	get(t, queryURL(ts.URL, knowsQuery), nil)
	resp, _ := get(t, queryURL(ts.URL, knowsQuery), nil)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q with caching disabled, want miss", got)
	}
}

func TestTimeoutMapsTo503(t *testing.T) {
	s, ts := newTestServer(t, townData, Config{})
	// A negative timeout yields an already-expired deadline: the engine
	// reports timeout before producing any row.
	resp, body := get(t, queryURL(ts.URL, knowsQuery, "timeout", "-1ms"), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "timed out") {
		t.Errorf("error body = %s", body)
	}
	if st := s.Stats(); st.Timeouts != 1 {
		t.Errorf("timeouts counter = %d, want 1", st.Timeouts)
	}
}

// holdQueries installs a test hook that blocks any query whose text
// contains marker until the returned release function is called. started
// receives one value per blocked query.
func holdQueries(t *testing.T, marker string) (started chan string, release func()) {
	t.Helper()
	started = make(chan string, 16)
	releasec := make(chan struct{})
	testHookExecute = func(q string) {
		if strings.Contains(q, marker) {
			started <- q
			<-releasec
		}
	}
	var once sync.Once
	release = func() { once.Do(func() { close(releasec) }) }
	t.Cleanup(func() {
		release()
		testHookExecute = nil
	})
	return started, release
}

func TestConcurrencyCapSheds503(t *testing.T) {
	s, ts := newTestServer(t, townData, Config{MaxConcurrent: 2, QueueWait: -1})
	started, release := holdQueries(t, "?hold")

	var wg sync.WaitGroup
	codes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := fmt.Sprintf(`SELECT ?hold%d WHERE { ?hold%d <http://town/knows> ?x . }`, i, i)
			resp, _ := get(t, queryURL(ts.URL, q), nil)
			codes <- resp.StatusCode
		}(i)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("blocked queries did not start")
		}
	}

	// Both slots are held: a third query must be shed.
	resp, body := get(t, queryURL(ts.URL, knowsQuery), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated: status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	if st := s.Stats(); st.Rejected != 1 || st.InFlight != 2 {
		t.Errorf("stats: rejected=%d in_flight=%d, want 1 and 2", st.Rejected, st.InFlight)
	}

	release()
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Errorf("held query finished with %d, want 200", code)
		}
	}

	// Capacity is free again.
	resp, _ = get(t, queryURL(ts.URL, knowsQuery, "limit", "2"), nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("after release: status %d, want 200", resp.StatusCode)
	}
}

func TestHotSwapKeepsInFlightQueries(t *testing.T) {
	const dataV2 = `
@prefix g: <http://town/> .
g:alice g:knows g:dave .
`
	s, ts := newTestServer(t, townData, Config{})
	started, release := holdQueries(t, "?hold")

	// Warm the cache on generation 0 so we can verify it rolls over.
	get(t, queryURL(ts.URL, knowsQuery), nil)

	holdQ := `SELECT ?hold WHERE { ?hold <http://town/knows> ?x . }`
	type result struct {
		code int
		body string
	}
	inflight := make(chan result, 1)
	go func() {
		resp, body := get(t, queryURL(ts.URL, holdQ, "format", "csv"), nil)
		inflight <- result{resp.StatusCode, body}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight query did not start")
	}

	// Swap while the query is executing against generation 0.
	if gen := s.Swap(openDB(t, dataV2)); gen != 1 {
		t.Fatalf("Swap generation = %d, want 1", gen)
	}
	release()

	r := <-inflight
	if r.code != http.StatusOK {
		t.Fatalf("in-flight query dropped by swap: status %d: %s", r.code, r.body)
	}
	// The in-flight query answered from the pre-swap database.
	if !strings.Contains(r.body, "bob") || strings.Contains(r.body, "dave") {
		t.Errorf("in-flight query saw post-swap data:\n%s", r.body)
	}

	// New requests see the new data, and the old cache is gone.
	resp, body := get(t, queryURL(ts.URL, knowsQuery, "format", "csv"), nil)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("post-swap X-Cache = %q, want miss (cache rolled over)", got)
	}
	if !strings.Contains(body, "dave") || strings.Contains(body, "bob") {
		t.Errorf("post-swap query answered from old data:\n%s", body)
	}
	if st := s.Stats(); st.Generation != 1 || st.DB.Triples != 1 {
		t.Errorf("stats: generation=%d triples=%d, want 1 and 1", st.Generation, st.DB.Triples)
	}
}

func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})
	resp, body := get(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK || body != "ok\n" {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}

	get(t, queryURL(ts.URL, knowsQuery), nil)
	resp, body = get(t, ts.URL+"/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats not JSON: %v\n%s", err, body)
	}
	if st.Queries != 1 || st.DB.Triples != 7 {
		t.Errorf("stats = %+v", st)
	}
	if st.P50Millis < 0 || st.P99Millis < st.P50Millis {
		t.Errorf("percentiles: p50=%v p99=%v", st.P50Millis, st.P99Millis)
	}
}

func TestNormalizeQuery(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT  ?x\n WHERE\t{ }", "SELECT ?x WHERE { }"},
		{`FILTER(?n = "a  b")`, `FILTER(?n = "a  b")`},
		{"  SELECT ?x  ", "SELECT ?x"},
		{"<http://x/a b> ?y", "<http://x/a b> ?y"},
		{`"esc\" quote  x"  ?z`, `"esc\" quote  x" ?z`},
	}
	for _, c := range cases {
		if got := normalizeQuery(c.in); got != c.want {
			t.Errorf("normalizeQuery(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestExplainParameter(t *testing.T) {
	_, ts := newTestServer(t, townData, Config{})

	u := ts.URL + "/sparql?explain=1&query=" + url.QueryEscape(knowsQuery)
	resp, body := get(t, u, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, want := range []string{"planner: cost", "est=", "actual="} {
		if !strings.Contains(body, want) {
			t.Errorf("explain body missing %q:\n%s", want, body)
		}
	}

	// Explicit planner selection.
	u = ts.URL + "/sparql?explain=1&planner=heuristic&query=" + url.QueryEscape(knowsQuery)
	if resp, body := get(t, u, nil); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, "planner: heuristic") {
		t.Errorf("heuristic explain: status=%d body:\n%s", resp.StatusCode, body)
	}

	// Unknown planner and malformed query map to 400.
	u = ts.URL + "/sparql?explain=1&planner=nonsense&query=" + url.QueryEscape(knowsQuery)
	if resp, _ := get(t, u, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown planner status = %d, want 400", resp.StatusCode)
	}
	u = ts.URL + "/sparql?explain=1&query=" + url.QueryEscape("SELEKT nonsense")
	if resp, _ := get(t, u, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed explain status = %d, want 400", resp.StatusCode)
	}
	// Invalid explain value.
	u = ts.URL + "/sparql?explain=maybe&query=" + url.QueryEscape(knowsQuery)
	if resp, _ := get(t, u, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid explain value status = %d, want 400", resp.StatusCode)
	}
}

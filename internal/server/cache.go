package server

import (
	"container/list"
	"sync"
)

// lruCache is a bounded, mutex-guarded LRU map. The zero value is not
// usable; construct with newLRU. A max of 0 disables the cache (every
// Get misses, Put is a no-op).
type lruCache[V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](max int) *lruCache[V] {
	return &lruCache[V]{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value and promotes it to most recently used.
func (c *lruCache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Put inserts or refreshes a value, evicting the least recently used
// entry when over capacity.
func (c *lruCache[V]) Put(key string, val V) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

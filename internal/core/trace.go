package core

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Shape classifies the query into a low-cardinality class usable as a
// metric label: "ask" for ASK queries, "ground" for fully variable-free
// queries, "star" when every component has a single core vertex (the
// paper's star-shaped decomposition unit), "complex" when some component
// chains two or more core vertices. The classification is structural —
// it depends on the query multigraph's core/satellite split, not on the
// data — so it is stable across re-planning.
func (p *PreparedQuery) Shape() string {
	if p.pq.Ask {
		return "ask"
	}
	maxCore := 0
	for _, pl := range p.Plans() {
		for i := range pl.Components {
			if n := len(pl.Components[i].Core); n > maxCore {
				maxCore = n
			}
		}
	}
	switch {
	case maxCore == 0:
		return "ground"
	case maxCore == 1:
		return "star"
	default:
		return "complex"
	}
}

// planSummary renders a one-line plan digest for traces and the slow-
// query log: planner, branch count, and per-component core sizes.
func planSummary(branches []preparedBranch) string {
	if len(branches) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "planner=%s branches=%d", branches[0].pl.Planner, len(branches))
	for bi := range branches {
		pl := branches[bi].pl
		if pl.Empty {
			fmt.Fprintf(&b, " b%d=empty(%s)", bi, pl.EmptyReason)
			continue
		}
		sizes := make([]string, len(pl.Components))
		for ci := range pl.Components {
			sizes[ci] = fmt.Sprintf("%d", len(pl.Components[ci].Core))
		}
		fmt.Fprintf(&b, " b%d=core[%s]", bi, strings.Join(sizes, ","))
	}
	return b.String()
}

// traceBranch copies one branch's engine counters and per-level
// frontier records into the trace, pairing each level with the
// planner's estimate for that position.
func traceBranch(tr *obs.Trace, branchIdx int, pl *plan.Plan, st *engine.Stats) {
	tr.AddEngine(obs.EngineCounters{
		InitCandidates: st.InitCandidates,
		Recursions:     st.Recursions,
		SatProbes:      st.SatProbes,
		Embeddings:     st.Embeddings,
	})
	if len(st.Levels) == 0 {
		return
	}
	levels := make([]obs.Level, 0, len(st.Levels))
	for _, l := range st.Levels {
		est := math.Inf(1)
		if ests := pl.Components[l.Component].Estimates; l.Pos < len(ests) {
			est = ests[l.Pos]
		}
		levels = append(levels, obs.Level{
			Branch:     branchIdx,
			Component:  l.Component,
			Pos:        l.Pos,
			Var:        pl.Query.Vars[l.Vertex].Name,
			Est:        est,
			Candidates: l.Candidates,
			Visits:     l.Visits,
		})
	}
	tr.AddLevels(levels)
}

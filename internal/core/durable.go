package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// ErrNotDurable is returned by durability operations on a store that has
// no write-ahead log attached.
var ErrNotDurable = errors.New("core: store has no write-ahead log attached")

// snapshotName is the checkpointed base snapshot inside a durable
// directory; CheckpointSnapshotPath exposes its full path.
const snapshotName = "base.snap"

// CheckpointSnapshotPath returns the path of the checkpointed base
// snapshot inside a durable directory (written by Checkpoint, loaded by
// callers bootstrapping a store before AttachWAL).
func CheckpointSnapshotPath(dir string) string {
	return filepath.Join(dir, snapshotName)
}

// WALOptions configure a store's write-ahead log.
type WALOptions struct {
	// Policy is the fsync policy; the zero value is wal.SyncAlways.
	Policy wal.SyncPolicy
	// Interval is the background fsync period for wal.SyncEvery.
	Interval time.Duration
	// SegmentBytes rotates segments past this size (0 = wal default).
	SegmentBytes int64
	// CheckpointOnCompact checkpoints (snapshot save + WAL truncation)
	// automatically after every completed compaction, bounding the log to
	// roughly one compaction threshold of records.
	CheckpointOnCompact bool
	// Compress gzips sealed WAL segments in the background (see
	// wal.Options.Compress).
	Compress bool
	// WrapFile is the fault-injection hook passed through to the log (see
	// wal.Options.WrapFile); nil in production.
	WrapFile func(*os.File) wal.SegmentFile
	// BaseLoaded records that the store held state from a base (checkpoint
	// snapshot or bootstrap source) before the WAL replayed — state the
	// log alone cannot reconstruct. The replication primary refuses
	// stream-from-zero requests when it is set, forcing fresh followers
	// to bootstrap from a snapshot instead of silently missing the base.
	// A fresh log under a loaded base is also stamped at sequence 1 (see
	// wal.Options.InitialSeq), so replication snapshots of the untouched
	// store never report sequence zero.
	BaseLoaded bool
}

// ErrDurability marks mutation failures caused by the write-ahead log
// (disk full, fsync failure, log closed during a reload) rather than by
// the request itself. Callers use errors.Is to map them to retryable
// server-side failures instead of client errors.
var ErrDurability = errors.New("core: write-ahead log failure")

// durable is the WAL attachment of a Store.
type durable struct {
	log            *wal.Log
	dir            string
	autoCheckpoint bool
	syncAlways     bool // fsync=always: commitGroup owns the sync barrier
	baseLoaded     bool // pre-WAL base state exists (see WALOptions.BaseLoaded)

	cpMu   sync.Mutex   // serializes Checkpoint with Close/Detach
	closed atomic.Bool  // set under cpMu before the log closes
	cpErr  atomic.Value // string: last auto-checkpoint failure, "" once one succeeds
}

// AttachWAL opens (creating if necessary) the write-ahead log in dir,
// replays every surviving record since the last checkpoint into the store
// — in order, through the normal mutation path — and attaches the log so
// every later mutation is logged and fsynced (per the policy) before it
// is published. It returns the number of records replayed.
//
// Attach before sharing the store: replay mutates it, and the caller must
// discard the store if AttachWAL fails partway through a replay.
func (s *Store) AttachWAL(dir string, o WALOptions) (int, error) {
	if s.dur.Load() != nil {
		return 0, errors.New("core: store already has a write-ahead log attached")
	}
	// Replay goes through storeConsumer — the same consumer a replication
	// follower feeds with records arriving over the network — so the one
	// apply path is covered by both the crash-point sweep and the
	// replication tests.
	walOpts := wal.Options{
		Policy:       o.Policy,
		Interval:     o.Interval,
		SegmentBytes: o.SegmentBytes,
		Compress:     o.Compress,
		WrapFile:     o.WrapFile,
	}
	if o.BaseLoaded {
		// Give the base a sequence of its own: a fresh log opens at 1
		// instead of 0, so a replication snapshot taken before any write
		// already carries a non-zero sequence and followers resync past
		// the refused from=0 window instead of looping on it.
		walOpts.InitialSeq = 1
	}
	log, err := wal.Open(dir, walOpts, storeConsumer{s})
	if err != nil {
		return 0, fmt.Errorf("%w: %w", ErrDurability, err)
	}
	s.dur.Store(&durable{
		log: log, dir: dir,
		autoCheckpoint: o.CheckpointOnCompact,
		syncAlways:     o.Policy == wal.SyncAlways,
		baseLoaded:     o.BaseLoaded,
	})
	return log.Stats().Replayed, nil
}

// CloseWAL syncs and closes the attached log. The store stays readable,
// but every further mutation fails with wal.ErrClosed — a durable store
// must never acknowledge a write it cannot log. A store without a WAL
// returns nil. Taking cpMu serializes the close with any in-flight
// Checkpoint, so a checkpoint can never install a snapshot after the
// directory has been handed to a successor (e.g. a server reload).
func (s *Store) CloseWAL() error {
	d := s.dur.Load()
	if d == nil {
		return nil
	}
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	d.closed.Store(true)
	if err := d.log.Close(); err != nil {
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	return nil
}

// DetachWAL syncs, closes and detaches the log: the store reverts to a
// purely in-memory one and mutations proceed unlogged. Benchmarks use
// this to measure durability cost against the same store.
func (s *Store) DetachWAL() error {
	d := s.dur.Swap(nil)
	if d == nil {
		return nil
	}
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	d.closed.Store(true)
	if err := d.log.Close(); err != nil {
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	return nil
}

// SyncWAL forces an fsync of the log, whatever the policy — the explicit
// durability barrier for SyncEvery / SyncNever stores. A store without a
// WAL returns nil.
func (s *Store) SyncWAL() error {
	d := s.dur.Load()
	if d == nil {
		return nil
	}
	if err := d.log.Sync(); err != nil {
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	return nil
}

// Checkpoint makes the current merged state durable as a base snapshot
// (dir/base.snap, written atomically via rename) and truncates every WAL
// segment the snapshot covers. Reopening the directory afterwards loads
// the snapshot and replays only records logged after the checkpoint.
// Concurrent mutations are safe: a batch that lands mid-checkpoint keeps
// its WAL record and replays on top of the snapshot (the capture is
// consistent, so replay reproduces the exact state).
func (s *Store) Checkpoint() error {
	d := s.dur.Load()
	if d == nil {
		return ErrNotDurable
	}
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	if d.closed.Load() {
		// Fail before touching the snapshot file: after CloseWAL the
		// directory may belong to a successor store (server reload), and
		// installing this store's older state over its base.snap would
		// silently roll back updates the successor acknowledged.
		return wal.ErrClosed
	}

	// Capture (snapshot, lastSeq) atomically with respect to writers:
	// appends and publishes happen under the same lock, so the snapshot
	// holds exactly the records through seq.
	l := &s.live
	l.mu.Lock()
	sn := l.snap.Load()
	seq := d.log.LastSeq()
	l.mu.Unlock()

	path := CheckpointSnapshotPath(d.dir)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	werr := writeSnapshot(f, sn)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp) //nolint:errcheck
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := wal.SyncDir(d.dir); err != nil {
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	if err := d.log.Checkpoint(seq); err != nil {
		return fmt.Errorf("%w: %w", ErrDurability, err)
	}
	return nil
}

// writeSnapshot encodes the snapshot's merged multigraph.
func writeSnapshot(f io.Writer, sn *Snapshot) error {
	if sn.Delta.Empty() {
		return sn.Graph.Encode(f)
	}
	g, err := materialize(sn.Delta)
	if err != nil {
		return err
	}
	return g.Encode(f)
}

// maybeAutoCheckpoint runs after a completed compaction when the store
// was attached with CheckpointOnCompact. Failures are retained for
// DurabilityInfo rather than surfaced: the data is still safe in the WAL,
// which simply keeps growing until a checkpoint succeeds.
func (s *Store) maybeAutoCheckpoint() {
	d := s.dur.Load()
	if d == nil || !d.autoCheckpoint {
		return
	}
	if err := s.Checkpoint(); err != nil {
		d.cpErr.Store(err.Error())
	} else {
		d.cpErr.Store("")
	}
}

// DurabilityInfo describes the store's write-ahead durability state: the
// quantities the server's /stats "durability" section reports.
type DurabilityInfo struct {
	// Enabled reports whether a WAL is attached; all other fields are
	// zero when it is false.
	Enabled bool
	// Dir is the durable directory; Policy the fsync policy in -fsync
	// flag syntax.
	Dir    string
	Policy string
	// WALBytes and Segments size the live log.
	WALBytes int64
	Segments int
	// LastSeq is the newest record's sequence; CheckpointSeq the sequence
	// through which records have been checkpointed away.
	LastSeq       uint64
	CheckpointSeq uint64
	// Appends and Fsyncs count log operations since open; Replayed is the
	// number of records replayed when the store was opened.
	Appends  uint64
	Fsyncs   uint64
	Replayed int
	// Checkpoints counts completed checkpoints since open; LastCheckpoint
	// is when the most recent one finished (zero if none).
	Checkpoints    uint64
	LastCheckpoint time.Time
	// LastCheckpointError is the most recent auto-checkpoint failure, or
	// empty ("") when none has failed since the last success.
	LastCheckpointError string
	// BaseLoaded reports that the store's open loaded a base (checkpoint
	// snapshot or bootstrap source) the WAL alone cannot reconstruct.
	BaseLoaded bool
}

// DurabilityInfo snapshots the durability counters.
func (s *Store) DurabilityInfo() DurabilityInfo {
	d := s.dur.Load()
	if d == nil {
		return DurabilityInfo{}
	}
	st := d.log.Stats()
	info := DurabilityInfo{
		Enabled:        true,
		Dir:            d.dir,
		Policy:         st.Policy,
		WALBytes:       st.Bytes,
		Segments:       st.Segments,
		LastSeq:        st.LastSeq,
		CheckpointSeq:  st.CheckpointSeq,
		Appends:        st.Appends,
		Fsyncs:         st.Fsyncs,
		Replayed:       st.Replayed,
		Checkpoints:    st.Checkpoints,
		LastCheckpoint: st.LastCheckpoint,
		BaseLoaded:     d.baseLoaded,
	}
	if v, ok := d.cpErr.Load().(string); ok {
		info.LastCheckpointError = v
	}
	return info
}

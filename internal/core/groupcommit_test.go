package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
)

// waitUntil polls cond (under qmu) until it holds or the deadline hits.
func waitUntil(t *testing.T, l *liveState, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.qmu.Lock()
		ok := cond()
		l.qmu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMutateGroupCommitForcedGroup deterministically forces a multi-batch
// commit group: the test holds the writer lock so the leader blocks in
// commitGroup, seven followers enqueue behind it, and releasing the lock
// commits them as one group — one WAL append span, one fsync, one
// published snapshot covering all seven.
func TestMutateGroupCommitForcedGroup(t *testing.T) {
	dir := t.TempDir()
	s := newEmpty(t)
	if _, err := s.AttachWAL(dir, WALOptions{}); err != nil { // fsync=always
		t.Fatal(err)
	}
	l := &s.live

	l.mu.Lock()
	errs := make(chan error, 8)
	go func() {
		errs <- s.Mutate([]rdf.Triple{tri("http://g/s0", "http://g/p", "http://g/o0")}, nil)
	}()
	// The leader has drained its own batch and is blocked on l.mu inside
	// commitGroup once it is leading with an empty queue.
	waitUntil(t, l, "leader to block in commitGroup", func() bool {
		return l.leading && len(l.queue) == 0
	})
	for i := 1; i < 8; i++ {
		go func(i int) {
			errs <- s.Mutate([]rdf.Triple{
				tri(fmt.Sprintf("http://g/s%d", i), "http://g/p", fmt.Sprintf("http://g/o%d", i)),
			}, nil)
		}(i)
	}
	waitUntil(t, l, "followers to enqueue", func() bool { return len(l.queue) == 7 })
	l.mu.Unlock()

	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("Mutate: %v", err)
		}
	}
	wi := s.WriteInfo()
	if wi.Batches != 8 {
		t.Errorf("Batches = %d, want 8", wi.Batches)
	}
	if wi.Groups != 2 {
		t.Errorf("Groups = %d, want 2 (leader's own batch, then the group of 7)", wi.Groups)
	}
	if wi.MaxGroupSize != 7 {
		t.Errorf("MaxGroupSize = %d, want 7", wi.MaxGroupSize)
	}
	var bucketed uint64
	for _, n := range wi.GroupSizeBuckets {
		bucketed += n
	}
	if bucketed != wi.Groups {
		t.Errorf("group-size buckets sum to %d, want %d", bucketed, wi.Groups)
	}
	di := s.DurabilityInfo()
	if di.Appends != 8 {
		t.Errorf("WAL Appends = %d, want 8 (one record per batch)", di.Appends)
	}
	if di.Fsyncs >= di.Appends {
		t.Errorf("Fsyncs = %d not amortized below Appends = %d", di.Fsyncs, di.Appends)
	}
	if got := triples(s); got != 8 {
		t.Errorf("store has %d triples, want 8", got)
	}

	// Every acked batch must also be durable: a reopen replays all eight.
	if err := s.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	s2 := newEmpty(t)
	n, err := s2.AttachWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("replayed %d records, want 8", n)
	}
	if got := triples(s2); got != 8 {
		t.Errorf("recovered store has %d triples, want 8", got)
	}
}

// TestMutateGroupCommitTorture: N concurrent writers against a durable
// fsync=always store. Every acked batch must be visible in the live
// store and must survive a reopen. Run under -race in CI.
func TestMutateGroupCommitTorture(t *testing.T) {
	const writers, batches = 8, 25
	dir := t.TempDir()
	s := newEmpty(t)
	if _, err := s.AttachWAL(dir, WALOptions{}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				adds := []rdf.Triple{
					tri(fmt.Sprintf("http://t/w%d/s%d", w, i), "http://t/p", fmt.Sprintf("http://t/w%d/o%d", w, i)),
				}
				if err := s.Mutate(adds, nil); err != nil {
					t.Errorf("writer %d batch %d: %v", w, i, err)
					return
				}
				// Read-your-writes: the batch is visible immediately.
				if got := s.Snapshot().Delta; !got.Empty() && got.NumTriples() == 0 {
					t.Errorf("writer %d: own write invisible", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	want := writers * batches
	if got := triples(s); got != want {
		t.Fatalf("store has %d triples, want %d", got, want)
	}
	wi := s.WriteInfo()
	if wi.Batches != uint64(want) {
		t.Errorf("Batches = %d, want %d", wi.Batches, want)
	}
	if wi.Groups == 0 || wi.Groups > wi.Batches {
		t.Errorf("Groups = %d outside (0, %d]", wi.Groups, wi.Batches)
	}
	if err := s.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	s2 := newEmpty(t)
	n, err := s2.AttachWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Errorf("replayed %d records, want %d", n, want)
	}
	if got := triples(s2); got != want {
		t.Errorf("recovered store has %d triples, want %d", got, want)
	}
}

// TestStoreCrashPointRecoveryGroupCommit extends the crash-point sweep to
// group granularity: commit a forced multi-batch group, then truncate the
// WAL at every byte offset. Recovery must always land on a whole-batch
// prefix of the group — never a torn half-batch — and the recovered
// triple count must match the replayed batch count exactly.
func TestStoreCrashPointRecoveryGroupCommit(t *testing.T) {
	const followers = 6
	src := t.TempDir()
	s := newEmpty(t)
	if _, err := s.AttachWAL(src, WALOptions{}); err != nil {
		t.Fatal(err)
	}
	l := &s.live

	// Force one single-batch group then one six-batch group, as in
	// TestMutateGroupCommitForcedGroup. Every batch adds exactly two
	// disjoint triples, so any whole-batch prefix of k batches holds 2k
	// triples regardless of commit order within the group.
	l.mu.Lock()
	errs := make(chan error, followers+1)
	go func() {
		errs <- s.Mutate([]rdf.Triple{
			tri("http://c/lead", "http://c/p", "http://c/o"),
			tri("http://c/lead2", "http://c/p", "http://c/o"),
		}, nil)
	}()
	waitUntil(t, l, "leader to block in commitGroup", func() bool {
		return l.leading && len(l.queue) == 0
	})
	for i := 0; i < followers; i++ {
		go func(i int) {
			errs <- s.Mutate([]rdf.Triple{
				tri(fmt.Sprintf("http://c/f%d/a", i), "http://c/p", "http://c/o"),
				tri(fmt.Sprintf("http://c/f%d/b", i), "http://c/p", "http://c/o"),
			}, nil)
		}(i)
	}
	waitUntil(t, l, "followers to enqueue", func() bool { return len(l.queue) == followers })
	l.mu.Unlock()
	for i := 0; i < followers+1; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("Mutate: %v", err)
		}
	}
	if wi := s.WriteInfo(); wi.MaxGroupSize != followers {
		t.Fatalf("MaxGroupSize = %d, want %d (forced group failed)", wi.MaxGroupSize, followers)
	}
	s.CloseWAL()

	m, err := filepath.Glob(filepath.Join(src, "wal-*.seg"))
	if err != nil || len(m) != 1 {
		t.Fatalf("expected one segment, got %v (%v)", m, err)
	}
	full, err := os.ReadFile(m[0])
	if err != nil {
		t.Fatal(err)
	}

	total := followers + 1
	for cut := int64(0); cut <= int64(len(full)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(m[0])), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec := newEmpty(t)
		n, err := rec.AttachWAL(dir, WALOptions{})
		if err != nil {
			t.Fatalf("cut=%d: AttachWAL: %v", cut, err)
		}
		if n > total {
			t.Fatalf("cut=%d: replayed %d batches, only %d committed", cut, n, total)
		}
		// All-or-prefix at batch granularity within the group: exactly the
		// replayed batches' triples, never part of one.
		if got, want := triples(rec), 2*n; got != want {
			t.Fatalf("cut=%d: recovered %d triples from %d batches, want %d", cut, got, n, want)
		}
		rec.CloseWAL()
	}
}

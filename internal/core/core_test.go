package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/rdf"
)

const figure1 = `
@prefix x: <http://dbpedia.org/resource/> .
@prefix y: <http://dbpedia.org/ontology/> .
x:London y:isPartOf x:England .
x:England y:hasCapital x:London .
x:Christopher_Nolan y:wasBornIn x:London .
x:Christopher_Nolan y:livedIn x:England .
x:Christopher_Nolan y:isPartOf x:Dark_Knight_Trilogy .
x:London y:hasStadium x:WembleyStadium .
x:WembleyStadium y:hasCapacityOf "90000" .
x:Amy_Winehouse y:wasBornIn x:London .
x:Amy_Winehouse y:diedIn x:London .
x:Amy_Winehouse y:wasPartOf x:Music_Band .
x:Music_Band y:hasName "MCA_Band" .
x:Music_Band y:foundedIn "1994" .
x:Music_Band y:wasFormedIn x:London .
x:Amy_Winehouse y:livedIn x:United_States .
x:Amy_Winehouse y:wasMarriedTo x:Blake_Fielder-Civil .
x:Blake_Fielder-Civil y:livedIn x:United_States .
`

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStoreFromReader(strings.NewReader(figure1))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStoreFromReader(t *testing.T) {
	s := newStore(t)
	if s.Graph().NumVertices() != 9 {
		t.Errorf("vertices = %d, want 9", s.Graph().NumVertices())
	}
	if s.Index() == nil || s.Index().A == nil || s.Index().S == nil || s.Index().N == nil {
		t.Fatal("indexes not built")
	}
	if s.BuildInfo().DatabaseBytes <= 0 || s.BuildInfo().IndexBytes <= 0 {
		t.Errorf("size estimates = %d / %d", s.BuildInfo().DatabaseBytes, s.BuildInfo().IndexBytes)
	}
	if s.BuildInfo().DatabaseTime < 0 || s.BuildInfo().IndexTime < 0 {
		t.Error("negative build times")
	}
}

func TestNewStoreErrors(t *testing.T) {
	if _, err := NewStoreFromReader(strings.NewReader("not rdf at all\n")); err == nil {
		t.Error("bad input accepted")
	}
	if _, err := NewStore([]rdf.Triple{{S: rdf.NewLiteral("x"), P: rdf.NewIRI("p"), O: rdf.NewIRI("o")}}); err == nil {
		t.Error("bad triple accepted")
	}
}

func TestSelectEndToEnd(t *testing.T) {
	s := newStore(t)
	rows, err := s.Select(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?who ?where WHERE {
  ?who y:wasBornIn ?where .
  ?who y:diedIn ?where .
}`, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if rows[0][0].Var != "who" || rows[0][0].Value != "http://dbpedia.org/resource/Amy_Winehouse" {
		t.Errorf("row = %v", rows[0])
	}
	if rows[0][1].Var != "where" || rows[0][1].Value != "http://dbpedia.org/resource/London" {
		t.Errorf("row = %v", rows[0])
	}
}

func TestSelectHonoursQueryLimit(t *testing.T) {
	s := newStore(t)
	rows, err := s.Select(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b } LIMIT 2`, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %d, want 2 (query LIMIT)", len(rows))
	}
	// Options limit tighter than query limit wins.
	rows, err = s.Select(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b } LIMIT 3`, engine.Options{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("rows = %d, want 1 (options limit)", len(rows))
	}
}

func TestSelectParseError(t *testing.T) {
	s := newStore(t)
	if _, err := s.Select(`SELEKT ?x WHERE { ?x <http://y/p> ?y }`, engine.Options{}); err == nil {
		t.Error("parse error not propagated")
	}
}

func TestSelectStar(t *testing.T) {
	s := newStore(t)
	rows, err := s.Select(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT * WHERE { ?a y:wasMarriedTo ?b }`, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCountMatchesSelect(t *testing.T) {
	s := newStore(t)
	qg, _, err := s.PrepareString(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Count(qg, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("Count = %d, want 3", n)
	}
}

func TestSelectDeadline(t *testing.T) {
	s := newStore(t)
	_, err := s.Select(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b }`,
		engine.Options{Deadline: time.Now().Add(-time.Second)})
	if err != engine.ErrDeadlineExceeded {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestSizeEstimatesScale(t *testing.T) {
	small := newStore(t)
	// Double the data (new IRIs) roughly doubles the estimates.
	doubled := figure1 + strings.ReplaceAll(figure1, "x:", "x:Copy_")
	big, err := NewStoreFromReader(strings.NewReader(doubled))
	if err != nil {
		t.Fatal(err)
	}
	if big.BuildInfo().DatabaseBytes <= small.BuildInfo().DatabaseBytes {
		t.Errorf("database bytes did not grow: %d vs %d", big.BuildInfo().DatabaseBytes, small.BuildInfo().DatabaseBytes)
	}
	if big.BuildInfo().IndexBytes <= small.BuildInfo().IndexBytes {
		t.Errorf("index bytes did not grow: %d vs %d", big.BuildInfo().IndexBytes, small.BuildInfo().IndexBytes)
	}
}

package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/otil"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/sparql"
)

// Explain renders the planner's view of query text with the default
// (cost-based) planner; see ExplainQuery.
func (s *Store) Explain(src string) (string, error) {
	pq, err := sparql.Parse(src)
	if err != nil {
		return "", err
	}
	return s.ExplainQuery(plan.Default(), pq)
}

// ExplainQuery renders the engine's execution view of a parsed query under
// the given planner: the core/satellite decomposition, the chosen matching
// order, the per-vertex constraints, and — for every core vertex — the
// planner's estimated candidate-set size next to the actual standalone
// candidate count obtained by probing the index ensemble (signature-index
// candidates refined by the Algorithm 1 constraints). It is a diagnostic
// aid; the output format is human-oriented and not stable.
func (s *Store) ExplainQuery(pl plan.Planner, pq *sparql.Query) (string, error) {
	sn := s.Snapshot()
	qg, err := query.Build(pq, sn.Resolver())
	if err != nil {
		return "", err
	}
	p := pl.Plan(qg, sn.Reader())

	var b strings.Builder
	fmt.Fprintf(&b, "query: %d pattern(s), %d variable(s)\n", len(pq.Patterns), len(qg.Vars))
	fmt.Fprintf(&b, "planner: %s\n", p.Planner)
	if !IsPlain(pq) {
		fmt.Fprintf(&b, "extensions: distinct=%v unionBranches=%d filters=%d offset=%d\n",
			pq.Distinct, len(pq.UnionBranches), len(pq.Filters), pq.Offset)
	}
	if qg.Unsat {
		fmt.Fprintf(&b, "UNSATISFIABLE: %s\n", qg.UnsatReason)
		return b.String(), nil
	}
	if len(qg.GroundEdges)+len(qg.GroundAttrs) > 0 {
		fmt.Fprintf(&b, "ground checks: %d edge(s), %d attribute(s)\n",
			len(qg.GroundEdges), len(qg.GroundAttrs))
	}
	if p.Empty {
		fmt.Fprintf(&b, "EMPTY: %s\n", p.EmptyReason)
		return b.String(), nil
	}
	for ci := range p.Components {
		comp := &p.Components[ci]
		fmt.Fprintf(&b, "component %d:\n", ci)
		for pos, u := range comp.Core {
			v := &qg.Vars[u]
			fmt.Fprintf(&b, "  core[%d] ?%s deg=%d attrs=%d iris=%d",
				pos, v.Name, qg.VarDegree(u), len(v.Attrs), len(v.IRIs))
			fmt.Fprintf(&b, " est=%s actual=%d", fmtEst(comp.Estimates[pos]), actualCandidates(sn, p, u))
			if sats := comp.Satellites[u]; len(sats) > 0 {
				names := make([]string, len(sats))
				for i, su := range sats {
					names[i] = "?" + qg.Vars[su].Name
				}
				sort.Strings(names)
				fmt.Fprintf(&b, " satellites=[%s]", strings.Join(names, " "))
			}
			b.WriteString("\n")
		}
	}
	return b.String(), nil
}

// ExplainAnalyze executes the query under a trace and renders, for every
// core-vertex matching level, the planner's estimated candidate-set size
// against the frontier the engine actually enumerated (total and mean
// per visit, with the visit count — the level's share of the recursion).
// Execution honours opts (limit, deadline, context); on an execution
// error (timeout, cancellation) no report is produced and the error is
// returned. The output format is human-oriented and not stable.
func (s *Store) ExplainAnalyze(pl plan.Planner, pq *sparql.Query, opts engine.Options) (string, error) {
	p, err := s.PrepareQueryWith(pl, pq)
	if err != nil {
		return "", err
	}
	tr := obs.NewTrace("")
	opts.Ctx = obs.ContextWithTrace(opts.Ctx, tr)
	rows := uint64(0)
	if err := p.Execute(opts, func(Solution) bool { rows++; return true }); err != nil {
		return "", err
	}
	tr.Finish("ok", rows)

	v := tr.View()
	var b strings.Builder
	fmt.Fprintf(&b, "query: %d pattern(s), shape=%s\n", len(pq.Patterns), p.Shape())
	fmt.Fprintf(&b, "planner: %s\n", v.Planner)
	if v.PlanSummary != "" {
		fmt.Fprintf(&b, "plan: %s\n", v.PlanSummary)
	}
	lastBranch, lastComp := -1, -1
	for _, l := range v.Levels {
		if l.Branch != lastBranch || l.Component != lastComp {
			fmt.Fprintf(&b, "branch %d component %d:\n", l.Branch, l.Component)
			lastBranch, lastComp = l.Branch, l.Component
		}
		fmt.Fprintf(&b, "  core[%d] ?%s est=%s actual=%d visits=%d mean=%s\n",
			l.Pos, l.Var, fmtEst(l.Est), l.Candidates, l.Visits, fmtEst(l.Mean()))
	}
	fmt.Fprintf(&b, "engine: init_candidates=%d recursions=%d sat_probes=%d embeddings=%d\n",
		v.Engine.InitCandidates, v.Engine.Recursions, v.Engine.SatProbes, v.Engine.Embeddings)
	if ratio, ok := tr.EstActualRatio(); ok {
		fmt.Fprintf(&b, "plan quality: est/actual ratio=%.2f\n", ratio)
	}
	fmt.Fprintf(&b, "rows: %d\n", rows)
	fmt.Fprintf(&b, "time: %s\n", tr.Duration())
	return b.String(), nil
}

// actualCandidates probes the snapshot for the true standalone
// candidate-set size of a core vertex: the signature candidates
// intersected with the plan's fixed constraints and self-loop filter —
// exactly what the engine would compute were the vertex chosen as the
// component's initial vertex.
func actualCandidates(sn *Snapshot, p *plan.Plan, u query.VertexID) int {
	qg := p.Query
	r := sn.Reader()
	cand := r.SignatureCandidates(qg.Synopsis(u))
	n := 0
	for _, v := range cand {
		if p.IsFixed[u] && !otil.ContainsSorted(p.Fixed[u], v) {
			continue
		}
		if st := qg.Vars[u].SelfTypes; len(st) > 0 && !r.HasEdgeTypes(v, v, st) {
			continue
		}
		n++
	}
	return n
}

// fmtEst renders a planner estimate compactly (estimates are derived from
// integer statistics but may be fractional after fanout division).
func fmtEst(e float64) string {
	if math.IsInf(e, 1) {
		return "inf"
	}
	if e == math.Trunc(e) {
		return fmt.Sprintf("%.0f", e)
	}
	return fmt.Sprintf("%.1f", e)
}

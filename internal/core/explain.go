package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sparql"
)

// Explain renders the engine's view of a query: the query multigraph's
// decomposition into core and satellite vertices, the heuristic matching
// order (Section 5.3), the per-vertex constraints, and the size of the
// initial candidate set the S index would return. It is a diagnostic aid;
// the output format is human-oriented and not stable.
func (s *Store) Explain(src string) (string, error) {
	pq, err := sparql.Parse(src)
	if err != nil {
		return "", err
	}
	qg, err := s.Prepare(pq)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "query: %d pattern(s), %d variable(s)\n", len(pq.Patterns), len(qg.Vars))
	if !IsPlain(pq) {
		fmt.Fprintf(&b, "extensions: distinct=%v unionBranches=%d filters=%d offset=%d\n",
			pq.Distinct, len(pq.UnionBranches), len(pq.Filters), pq.Offset)
	}
	if qg.Unsat {
		fmt.Fprintf(&b, "UNSATISFIABLE: %s\n", qg.UnsatReason)
		return b.String(), nil
	}
	if len(qg.GroundEdges)+len(qg.GroundAttrs) > 0 {
		fmt.Fprintf(&b, "ground checks: %d edge(s), %d attribute(s)\n",
			len(qg.GroundEdges), len(qg.GroundAttrs))
	}
	for ci := range qg.Components {
		comp := &qg.Components[ci]
		fmt.Fprintf(&b, "component %d:\n", ci)
		for pos, u := range comp.Core {
			v := &qg.Vars[u]
			fmt.Fprintf(&b, "  core[%d] ?%s deg=%d attrs=%d iris=%d", pos, v.Name, qg.VarDegree(u), len(v.Attrs), len(v.IRIs))
			if sats := comp.Satellites[u]; len(sats) > 0 {
				names := make([]string, len(sats))
				for i, su := range sats {
					names[i] = "?" + qg.Vars[su].Name
				}
				sort.Strings(names)
				fmt.Fprintf(&b, " satellites=[%s]", strings.Join(names, " "))
			}
			if pos == 0 {
				cand := s.Index.S.Candidates(qg.Synopsis(u))
				fmt.Fprintf(&b, " initialCandidates=%d/%d", len(cand), s.Graph.NumVertices())
			}
			b.WriteString("\n")
		}
	}
	return b.String(), nil
}

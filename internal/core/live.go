package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/delta"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/rdf"
	"repro/internal/wal"
)

// DefaultCompactThreshold is the overlay size (added triples plus
// tombstones) past which a mutation triggers background compaction.
const DefaultCompactThreshold = 8192

// versionsPerEntry bounds version-chain memory under churn: the overlay
// retains a copy-on-write bucket version per mutation, and adds that
// cancel against deletes leave Size unchanged while versions keep
// growing. Compaction therefore also triggers once the overlay holds
// more than versionsPerEntry × threshold retained versions.
const versionsPerEntry = 8

// mutation is one applied write batch, kept in the replay log so a
// compaction built off-lock can catch up with writes that landed while
// it was rebuilding.
type mutation struct {
	adds, dels []rdf.Triple
}

// commitReq is one writer's batch waiting on the commit queue. done is
// closed once the batch has been durably committed (or failed), with err
// carrying the outcome.
type commitReq struct {
	adds, dels []rdf.Triple
	err        error
	done       chan struct{}
}

// liveState is the MVCC machinery of a Store: the atomically swapped
// snapshot, the writer lock, the group-commit queue, the replay log of
// the current base generation, and the compaction bookkeeping.
type liveState struct {
	snap atomic.Pointer[Snapshot]

	mu         sync.Mutex // serializes mutations, clears and swap-ins
	log        []mutation // batches applied while a compaction is rebuilding
	compacting bool       // guarded by mu; one compaction at a time

	// Group commit: concurrent Mutate callers enqueue their batches; the
	// first becomes the leader and commits everything queued as one group
	// (one WAL append span, one fsync, one published snapshot), then
	// re-drains until the queue is empty. qmu only guards the queue — it
	// is never held across a commit, so enqueueing never blocks on I/O.
	qmu     sync.Mutex
	queue   []*commitReq
	leading bool

	// compactDone is closed when the in-flight compaction (background or
	// forced) finishes, including any post-compaction auto checkpoint;
	// nil when idle. Guarded by mu. A fresh channel per cycle avoids
	// sync.WaitGroup's Add-concurrent-with-Wait reuse hazard.
	compactDone chan struct{}

	compactThreshold atomic.Int64

	updates        atomic.Uint64
	compactions    atomic.Uint64
	lastCompaction atomic.Int64 // nanoseconds

	// Commit-group statistics (see WriteInfo).
	groups         atomic.Uint64
	groupedBatches atomic.Uint64
	maxGroup       atomic.Uint64
	groupSizes     [groupSizeBuckets]atomic.Uint64

	// Copy-on-write effort retired with replaced generations; the live
	// generation's counters stay in its delta overlay.
	copiedEntriesPrev atomic.Uint64
	copiedBytesPrev   atomic.Uint64
}

// retireDelta folds a replaced generation's copy-on-write counters into
// the store-lifetime accumulators (called under mu at snapshot swap).
func (l *liveState) retireDelta(v *delta.View) {
	e, b := v.CopyStats()
	l.copiedEntriesPrev.Add(e)
	l.copiedBytesPrev.Add(b)
}

func (l *liveState) init(sn *Snapshot) {
	l.snap.Store(sn)
	l.compactThreshold.Store(DefaultCompactThreshold)
}

func (l *liveState) snapshot() *Snapshot { return l.snap.Load() }

// GenerationInfo describes the store's live-update state: the quantities
// the server's /stats "generation" section reports.
type GenerationInfo struct {
	// Epoch is the data version (see Snapshot.Epoch).
	Epoch uint64
	// Generation counts base rebuilds (compactions and clears).
	Generation uint64
	// DeltaAdds and DeltaTombstones size the uncompacted overlay.
	DeltaAdds, DeltaTombstones int
	// Updates counts applied mutation batches since the store opened.
	Updates uint64
	// Compactions counts completed compactions; LastCompaction is the
	// wall-clock duration of the most recent one (zero if none ran).
	Compactions    uint64
	LastCompaction time.Duration
}

// GenerationInfo snapshots the live-update counters.
func (s *Store) GenerationInfo() GenerationInfo {
	sn := s.Snapshot()
	return GenerationInfo{
		Epoch:           sn.Epoch,
		Generation:      sn.Gen,
		DeltaAdds:       sn.Delta.Adds(),
		DeltaTombstones: sn.Delta.Tombstones(),
		Updates:         s.live.updates.Load(),
		Compactions:     s.live.compactions.Load(),
		LastCompaction:  time.Duration(s.live.lastCompaction.Load()),
	}
}

// SetCompactThreshold sets the overlay size (adds + tombstones) past
// which mutations trigger background compaction. n <= 0 disables
// automatic compaction (Compact still works).
func (s *Store) SetCompactThreshold(n int) {
	s.live.compactThreshold.Store(int64(n))
}

// GroupSizeBounds are the upper bounds of WriteInfo.GroupSizeBuckets:
// commit groups of ≤1, ≤2, ≤4, ≤8, ≤16 and ≤32 batches; a final
// overflow bucket counts larger groups.
var GroupSizeBounds = [...]uint64{1, 2, 4, 8, 16, 32}

const groupSizeBuckets = len(GroupSizeBounds) + 1

// WriteInfo describes the write path's group-commit and overlay
// copy-on-write behaviour: the quantities behind the server's /stats
// "write_path" section and the write-path /metrics.
type WriteInfo struct {
	// Batches counts mutation batches committed through the write path.
	Batches uint64
	// Groups counts commit groups: each is one WAL append span (one fsync
	// under fsync=always) and one published snapshot covering every batch
	// in the group. Batches/Groups is the mean group size; Fsyncs/Batches
	// (from DurabilityInfo) is the amortization the grouping bought.
	Groups uint64
	// MaxGroupSize is the largest commit group since the store opened.
	MaxGroupSize uint64
	// GroupSizeBuckets is a histogram of commit-group sizes; bucket i
	// counts groups of size ≤ GroupSizeBounds[i], the last bucket counts
	// the overflow.
	GroupSizeBuckets [groupSizeBuckets]uint64
	// OverlayEntriesCopied and OverlayBytesCopied measure the overlay's
	// cumulative copy-on-write effort (entries copied into fresh bucket
	// versions and an estimate of the bytes those copies retained) across
	// all generations. The per-batch delta is O(batch), independent of
	// overlay size.
	OverlayEntriesCopied uint64
	OverlayBytesCopied   uint64
	// OverlayVersions is the live generation's retained bucket-version
	// count (the churn-memory quantity compaction also triggers on).
	OverlayVersions uint64
}

// WriteInfo snapshots the write-path counters.
func (s *Store) WriteInfo() WriteInfo {
	l := &s.live
	sn := s.Snapshot()
	e, b := sn.Delta.CopyStats()
	wi := WriteInfo{
		Batches:              l.groupedBatches.Load(),
		Groups:               l.groups.Load(),
		MaxGroupSize:         l.maxGroup.Load(),
		OverlayEntriesCopied: l.copiedEntriesPrev.Load() + e,
		OverlayBytesCopied:   l.copiedBytesPrev.Load() + b,
		OverlayVersions:      uint64(sn.Delta.Versions()),
	}
	for i := range wi.GroupSizeBuckets {
		wi.GroupSizeBuckets[i] = l.groupSizes[i].Load()
	}
	return wi
}

// recordGroup updates the commit-group statistics for one group of n
// batches (called under mu).
func (l *liveState) recordGroup(n uint64) {
	l.groups.Add(1)
	l.groupedBatches.Add(n)
	for {
		cur := l.maxGroup.Load()
		if n <= cur || l.maxGroup.CompareAndSwap(cur, n) {
			break
		}
	}
	i := 0
	for i < len(GroupSizeBounds) && n > GroupSizeBounds[i] {
		i++
	}
	l.groupSizes[i].Add(1)
}

// Mutate applies one write batch: dels are removed first, then adds are
// inserted, atomically — no reader ever observes the batch partially
// applied. Triples are validated up front; on error nothing changes.
// When the call returns, every later query sees the new state
// (read-your-writes). Deleting absent triples and inserting present
// ones are no-ops, per SPARQL 1.1 Update semantics.
//
// Concurrent callers group-commit: batches queued while a commit is in
// flight are committed together by the leading writer — one WAL append
// span, one fsync under fsync=always, one published snapshot — so
// durable write throughput scales with writer concurrency instead of
// paying one fsync per batch. Acknowledgement semantics are unchanged:
// when Mutate returns nil the batch is applied and, on a durable store,
// as stable as the fsync policy promises.
func (s *Store) Mutate(adds, dels []rdf.Triple) error {
	if len(adds) == 0 && len(dels) == 0 {
		return nil
	}
	// Validate before enqueueing: a malformed triple must fail only its
	// own caller, never a whole commit group, and commitGroup relies on
	// Apply being infallible for validated input (the shared overlay
	// cannot roll back a half-applied group).
	for _, t := range dels {
		if err := delta.Validate(t); err != nil {
			return err
		}
	}
	for _, t := range adds {
		if err := delta.Validate(t); err != nil {
			return err
		}
	}
	l := &s.live
	req := &commitReq{adds: adds, dels: dels, done: make(chan struct{})}
	l.qmu.Lock()
	l.queue = append(l.queue, req)
	if l.leading {
		// A leader is draining the queue; it will commit this batch in an
		// upcoming group and close done.
		l.qmu.Unlock()
		<-req.done
		return req.err
	}
	l.leading = true
	for len(l.queue) > 0 {
		group := l.queue
		l.queue = nil
		l.qmu.Unlock()
		s.commitGroup(group)
		l.qmu.Lock()
	}
	l.leading = false
	l.qmu.Unlock()
	<-req.done // own batch was part of a group this leader committed
	return req.err
}

// commitGroup commits queued batches as one unit under the writer lock:
// one WAL append span (one fsync) covering every batch, the batches
// applied to the overlay in order, and one snapshot publish. The epoch
// still advances once per batch, so epoch-keyed caches behave exactly as
// if the batches had committed individually.
func (s *Store) commitGroup(group []*commitReq) {
	l := &s.live
	l.mu.Lock()
	cur := l.snap.Load()

	// Write-ahead discipline at group granularity: every batch reaches
	// the log before any of them is applied, and stable storage before
	// any of them is acknowledged. Applying before logging would risk
	// publishing overlay state the log never saw (the shared overlay
	// cannot roll back). Under fsync=always the fsync runs concurrently
	// with applying the group — both must finish before the publish, but
	// neither needs the other — so a commit costs max(fsync, apply)
	// instead of their sum. On an append failure the whole group fails
	// and nothing changes. On an fsync failure the overlay has applied
	// the group but it is never published: readers keep the pre-group
	// snapshot, and the failed sync closed the log, so every later
	// durable write fails before it could touch the overlay.
	var syncErr chan error
	if d := s.dur.Load(); d != nil {
		recs := make([]wal.Record, len(group))
		for i, req := range group {
			recs[i] = wal.Record{
				Kind: wal.KindMutation, Epoch: cur.Epoch + uint64(i) + 1,
				Adds: req.adds, Dels: req.dels,
			}
		}
		if _, werr := d.log.AppendBatchNoSync(recs); werr != nil {
			err := fmt.Errorf("%w: %w", ErrDurability, werr)
			l.mu.Unlock()
			for _, req := range group {
				req.err = err
				close(req.done)
			}
			return
		}
		if d.syncAlways {
			syncErr = make(chan error, 1)
			go func() { syncErr <- d.log.Sync() }()
			// Yield so the syncer reaches its fsync syscall now: once it is
			// in the kernel it releases the P, and the applies below run
			// concurrently with the disk flush even on GOMAXPROCS=1.
			runtime.Gosched()
		}
	}

	nv := cur.Delta
	epoch := cur.Epoch
	for _, req := range group {
		next, err := nv.Apply(req.adds, req.dels)
		if err != nil {
			// Unreachable: batches were validated before enqueueing and nv
			// is always the newest view. Fail the batch rather than panic.
			req.err = err
			continue
		}
		nv = next
		epoch++
	}
	if syncErr != nil {
		if werr := <-syncErr; werr != nil {
			err := fmt.Errorf("%w: %w", ErrDurability, werr)
			l.mu.Unlock()
			for _, req := range group {
				req.err = err
				close(req.done)
			}
			return
		}
	}
	if l.compacting {
		// The replay log only exists to let an in-flight rebuild catch
		// up; when no compaction is running, the snapshot itself is the
		// durable state and logging would grow without bound. Deferred
		// until the group is known durable: a batch that was never
		// acknowledged must not reach the rebuilt generation.
		for _, req := range group {
			if req.err != nil {
				continue
			}
			l.log = append(l.log, mutation{
				adds: append([]rdf.Triple(nil), req.adds...),
				dels: append([]rdf.Triple(nil), req.dels...),
			})
		}
	}
	if epoch != cur.Epoch {
		l.snap.Store(&Snapshot{
			Graph: cur.Graph, Index: cur.Index, Delta: nv,
			Epoch: epoch, Gen: cur.Gen, Build: cur.Build,
		})
		l.updates.Add(epoch - cur.Epoch)
		l.recordGroup(uint64(len(group)))
	}
	var done chan struct{}
	if th := l.compactThreshold.Load(); th > 0 && !l.compacting &&
		(int64(nv.Size()) >= th || int64(nv.Versions()) >= versionsPerEntry*th) {
		l.compacting = true
		done = make(chan struct{})
		l.compactDone = done
	}
	l.mu.Unlock()
	for _, req := range group {
		close(req.done)
	}
	if done != nil {
		go func() {
			// compactDone stays set (and done open) until the checkpoint
			// has run, so WaitCompaction observers see the whole cycle.
			defer func() {
				close(done)
				l.mu.Lock()
				if l.compactDone == done {
					l.compactDone = nil
				}
				l.mu.Unlock()
			}()
			if s.runCompaction() == nil { // error unreachable for validated batches
				s.maybeAutoCheckpoint()
			}
		}()
	}
}

// Clear atomically replaces the store's contents with an empty
// generation (SPARQL `CLEAR DEFAULT` / `CLEAR ALL`). An in-flight
// compaction detects the generation change and discards its result.
// On a durable store the clear is logged first; a log failure leaves
// the contents untouched.
func (s *Store) Clear() error {
	l := &s.live
	l.mu.Lock()
	defer l.mu.Unlock()
	return s.clearLocked(true)
}

// clearLocked is Clear's body; logIt=false is the replication/replay
// path, where the clear is already in the log (local or the primary's).
// Caller holds l.mu.
func (s *Store) clearLocked(logIt bool) error {
	g := (&multigraph.Builder{}).Build()
	ix := index.Build(g)
	l := &s.live
	cur := l.snap.Load()
	if logIt {
		if d := s.dur.Load(); d != nil {
			if _, err := d.log.Append(wal.Record{Kind: wal.KindClear, Epoch: cur.Epoch + 1}); err != nil {
				return fmt.Errorf("%w: %w", ErrDurability, err)
			}
		}
	}
	l.retireDelta(cur.Delta)
	l.snap.Store(&Snapshot{
		Graph: g, Index: ix, Delta: delta.NewView(g, ix),
		Epoch: cur.Epoch + 1, Gen: cur.Gen + 1,
		Build: BuildStats{
			DatabaseBytes: estimateGraphBytes(g),
			IndexBytes:    estimateIndexBytes(g, ix),
		},
	})
	l.log = nil
	l.updates.Add(1)
	return nil
}

// Compact synchronously rebuilds base+delta into a fresh generation and
// swaps it in, refreshing the index ensemble and planner statistics. If
// a background compaction is already running it waits for that one
// instead. Compacting an empty overlay is a no-op.
func (s *Store) Compact() error {
	l := &s.live
	l.mu.Lock()
	if l.compacting {
		done := l.compactDone
		l.mu.Unlock()
		if done != nil {
			<-done
		}
		return nil
	}
	if l.snap.Load().Delta.Empty() {
		l.mu.Unlock()
		return nil
	}
	l.compacting = true
	done := make(chan struct{})
	l.compactDone = done
	l.mu.Unlock()
	defer func() {
		close(done)
		l.mu.Lock()
		if l.compactDone == done {
			l.compactDone = nil
		}
		l.mu.Unlock()
	}()
	err := s.runCompaction()
	if err == nil {
		s.maybeAutoCheckpoint()
	}
	return err
}

// WaitCompaction blocks until the compaction that is in flight when it
// is called (if any) has finished.
func (s *Store) WaitCompaction() {
	l := &s.live
	l.mu.Lock()
	done := l.compactDone
	l.mu.Unlock()
	if done != nil {
		<-done
	}
}

// runCompaction rebuilds the captured snapshot's merged view into a
// fresh frozen generation off-lock, then swaps it in under the writer
// lock, replaying any mutations that landed during the rebuild onto the
// new base. The caller must have set l.compacting (and owns clearing
// it, which this function does on every path).
func (s *Store) runCompaction() error {
	l := &s.live
	start := time.Now()

	l.mu.Lock()
	cur := l.snap.Load()
	// Everything logged so far is already inside cur; the log from here
	// on holds exactly the writes the rebuild will need to replay.
	l.log = nil
	l.mu.Unlock()

	// Offline stage for the new generation — off-lock: readers keep
	// querying the current snapshot, writers keep appending to the log.
	buildStart := time.Now()
	g, err := materialize(cur.Delta)
	if err != nil {
		// Cannot happen for validated mutations; keep the old generation.
		l.mu.Lock()
		l.compacting = false
		l.log = nil
		l.mu.Unlock()
		return err
	}
	dbTime := time.Since(buildStart)
	idxStart := time.Now()
	ix := index.Build(g)
	build := BuildStats{
		DatabaseTime:  dbTime,
		IndexTime:     time.Since(idxStart),
		DatabaseBytes: estimateGraphBytes(g),
		IndexBytes:    estimateIndexBytes(g, ix),
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	l.compacting = false
	// compactDone is cleared by the caller once the post-compaction
	// checkpoint (if any) has also finished; clearing it here would let
	// WaitCompaction return between the swap and the checkpoint.
	tail := l.log
	l.log = nil
	cur2 := l.snap.Load()
	if cur2.Gen != cur.Gen {
		// The base changed under us (Clear): the rebuilt generation would
		// resurrect wiped data — discard it.
		return nil
	}
	// Catch up with writes that landed during the rebuild. A batch that
	// raced the initial capture may already be inside cur — replaying the
	// logged sequence in order is idempotent (each triple ends in the
	// state its last operation dictates), so the result is exact.
	nv := delta.NewView(g, ix)
	for _, m := range tail {
		if nv, err = nv.Apply(m.adds, m.dels); err != nil {
			return err // validated at Mutate time; unreachable
		}
	}
	l.retireDelta(cur2.Delta)
	l.snap.Store(&Snapshot{
		Graph: g, Index: ix, Delta: nv,
		Epoch: cur2.Epoch + 1, Gen: cur2.Gen + 1, Build: build,
	})
	l.compactions.Add(1)
	l.lastCompaction.Store(int64(time.Since(start)))
	return nil
}

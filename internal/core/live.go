package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/delta"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/rdf"
	"repro/internal/wal"
)

// DefaultCompactThreshold is the overlay size (added triples plus
// tombstones) past which a mutation triggers background compaction.
const DefaultCompactThreshold = 8192

// mutation is one applied write batch, kept in the replay log so a
// compaction built off-lock can catch up with writes that landed while
// it was rebuilding.
type mutation struct {
	adds, dels []rdf.Triple
}

// liveState is the MVCC machinery of a Store: the atomically swapped
// snapshot, the writer lock, the replay log of the current base
// generation, and the compaction bookkeeping.
type liveState struct {
	snap atomic.Pointer[Snapshot]

	mu         sync.Mutex // serializes mutations, clears and swap-ins
	log        []mutation // batches applied while a compaction is rebuilding
	compacting bool       // guarded by mu; one compaction at a time

	// compactDone is closed when the in-flight compaction (background or
	// forced) finishes; nil when idle. Guarded by mu. A fresh channel per
	// cycle avoids sync.WaitGroup's Add-concurrent-with-Wait reuse hazard.
	compactDone chan struct{}

	compactThreshold atomic.Int64

	updates        atomic.Uint64
	compactions    atomic.Uint64
	lastCompaction atomic.Int64 // nanoseconds
}

func (l *liveState) init(sn *Snapshot) {
	l.snap.Store(sn)
	l.compactThreshold.Store(DefaultCompactThreshold)
}

func (l *liveState) snapshot() *Snapshot { return l.snap.Load() }

// GenerationInfo describes the store's live-update state: the quantities
// the server's /stats "generation" section reports.
type GenerationInfo struct {
	// Epoch is the data version (see Snapshot.Epoch).
	Epoch uint64
	// Generation counts base rebuilds (compactions and clears).
	Generation uint64
	// DeltaAdds and DeltaTombstones size the uncompacted overlay.
	DeltaAdds, DeltaTombstones int
	// Updates counts applied mutation batches since the store opened.
	Updates uint64
	// Compactions counts completed compactions; LastCompaction is the
	// wall-clock duration of the most recent one (zero if none ran).
	Compactions    uint64
	LastCompaction time.Duration
}

// GenerationInfo snapshots the live-update counters.
func (s *Store) GenerationInfo() GenerationInfo {
	sn := s.Snapshot()
	return GenerationInfo{
		Epoch:           sn.Epoch,
		Generation:      sn.Gen,
		DeltaAdds:       sn.Delta.Adds(),
		DeltaTombstones: sn.Delta.Tombstones(),
		Updates:         s.live.updates.Load(),
		Compactions:     s.live.compactions.Load(),
		LastCompaction:  time.Duration(s.live.lastCompaction.Load()),
	}
}

// SetCompactThreshold sets the overlay size (adds + tombstones) past
// which mutations trigger background compaction. n <= 0 disables
// automatic compaction (Compact still works).
func (s *Store) SetCompactThreshold(n int) {
	s.live.compactThreshold.Store(int64(n))
}

// Mutate applies one write batch: dels are removed first, then adds are
// inserted, atomically — no reader ever observes the batch partially
// applied. Triples are validated up front; on error nothing changes.
// When the call returns, every later query sees the new state
// (read-your-writes). Deleting absent triples and inserting present
// ones are no-ops, per SPARQL 1.1 Update semantics.
func (s *Store) Mutate(adds, dels []rdf.Triple) error {
	if len(adds) == 0 && len(dels) == 0 {
		return nil
	}
	l := &s.live
	l.mu.Lock()
	cur := l.snap.Load()
	nv, err := cur.Delta.Apply(adds, dels)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	// Write-ahead discipline: the batch reaches the log (and, under
	// fsync=always, stable storage) before the new snapshot is published
	// or the caller is acknowledged. On log failure nothing changes.
	if d := s.dur.Load(); d != nil {
		if _, werr := d.log.Append(wal.Record{
			Kind: wal.KindMutation, Epoch: cur.Epoch + 1, Adds: adds, Dels: dels,
		}); werr != nil {
			l.mu.Unlock()
			return fmt.Errorf("%w: %w", ErrDurability, werr)
		}
	}
	if l.compacting {
		// The replay log only exists to let an in-flight rebuild catch
		// up; when no compaction is running, the snapshot itself is the
		// durable state and logging would grow without bound.
		l.log = append(l.log, mutation{
			adds: append([]rdf.Triple(nil), adds...),
			dels: append([]rdf.Triple(nil), dels...),
		})
	}
	l.snap.Store(&Snapshot{
		Graph: cur.Graph, Index: cur.Index, Delta: nv,
		Epoch: cur.Epoch + 1, Gen: cur.Gen, Build: cur.Build,
	})
	l.updates.Add(1)
	var done chan struct{}
	if th := l.compactThreshold.Load(); th > 0 && int64(nv.Size()) >= th && !l.compacting {
		l.compacting = true
		done = make(chan struct{})
		l.compactDone = done
	}
	l.mu.Unlock()
	if done != nil {
		go func() {
			defer close(done)
			if s.runCompaction() == nil { // error unreachable for validated batches
				s.maybeAutoCheckpoint()
			}
		}()
	}
	return nil
}

// Clear atomically replaces the store's contents with an empty
// generation (SPARQL `CLEAR DEFAULT` / `CLEAR ALL`). An in-flight
// compaction detects the generation change and discards its result.
// On a durable store the clear is logged first; a log failure leaves
// the contents untouched.
func (s *Store) Clear() error {
	g := (&multigraph.Builder{}).Build()
	ix := index.Build(g)
	l := &s.live
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.snap.Load()
	if d := s.dur.Load(); d != nil {
		if _, err := d.log.Append(wal.Record{Kind: wal.KindClear, Epoch: cur.Epoch + 1}); err != nil {
			return fmt.Errorf("%w: %w", ErrDurability, err)
		}
	}
	l.snap.Store(&Snapshot{
		Graph: g, Index: ix, Delta: delta.NewView(g, ix),
		Epoch: cur.Epoch + 1, Gen: cur.Gen + 1,
		Build: BuildStats{
			DatabaseBytes: estimateGraphBytes(g),
			IndexBytes:    estimateIndexBytes(g, ix),
		},
	})
	l.log = nil
	l.updates.Add(1)
	return nil
}

// Compact synchronously rebuilds base+delta into a fresh generation and
// swaps it in, refreshing the index ensemble and planner statistics. If
// a background compaction is already running it waits for that one
// instead. Compacting an empty overlay is a no-op.
func (s *Store) Compact() error {
	l := &s.live
	l.mu.Lock()
	if l.compacting {
		done := l.compactDone
		l.mu.Unlock()
		if done != nil {
			<-done
		}
		return nil
	}
	if l.snap.Load().Delta.Empty() {
		l.mu.Unlock()
		return nil
	}
	l.compacting = true
	done := make(chan struct{})
	l.compactDone = done
	l.mu.Unlock()
	defer close(done)
	err := s.runCompaction()
	if err == nil {
		s.maybeAutoCheckpoint()
	}
	return err
}

// WaitCompaction blocks until the compaction that is in flight when it
// is called (if any) has finished.
func (s *Store) WaitCompaction() {
	l := &s.live
	l.mu.Lock()
	done := l.compactDone
	l.mu.Unlock()
	if done != nil {
		<-done
	}
}

// runCompaction rebuilds the captured snapshot's merged view into a
// fresh frozen generation off-lock, then swaps it in under the writer
// lock, replaying any mutations that landed during the rebuild onto the
// new base. The caller must have set l.compacting (and owns clearing
// it, which this function does on every path).
func (s *Store) runCompaction() error {
	l := &s.live
	start := time.Now()

	l.mu.Lock()
	cur := l.snap.Load()
	// Everything logged so far is already inside cur; the log from here
	// on holds exactly the writes the rebuild will need to replay.
	l.log = nil
	l.mu.Unlock()

	// Offline stage for the new generation — off-lock: readers keep
	// querying the current snapshot, writers keep appending to the log.
	buildStart := time.Now()
	g, err := materialize(cur.Delta)
	if err != nil {
		// Cannot happen for validated mutations; keep the old generation.
		l.mu.Lock()
		l.compacting = false
		l.compactDone = nil
		l.log = nil
		l.mu.Unlock()
		return err
	}
	dbTime := time.Since(buildStart)
	idxStart := time.Now()
	ix := index.Build(g)
	build := BuildStats{
		DatabaseTime:  dbTime,
		IndexTime:     time.Since(idxStart),
		DatabaseBytes: estimateGraphBytes(g),
		IndexBytes:    estimateIndexBytes(g, ix),
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	l.compacting = false
	l.compactDone = nil
	tail := l.log
	l.log = nil
	cur2 := l.snap.Load()
	if cur2.Gen != cur.Gen {
		// The base changed under us (Clear): the rebuilt generation would
		// resurrect wiped data — discard it.
		return nil
	}
	// Catch up with writes that landed during the rebuild. A batch that
	// raced the initial capture may already be inside cur — replaying the
	// logged sequence in order is idempotent (each triple ends in the
	// state its last operation dictates), so the result is exact.
	nv := delta.NewView(g, ix)
	for _, m := range tail {
		if nv, err = nv.Apply(m.adds, m.dels); err != nil {
			return err // validated at Mutate time; unreachable
		}
	}
	l.snap.Store(&Snapshot{
		Graph: g, Index: ix, Delta: nv,
		Epoch: cur2.Epoch + 1, Gen: cur2.Gen + 1, Build: build,
	})
	l.compactions.Add(1)
	l.lastCompaction.Store(int64(time.Since(start)))
	return nil
}

// Package core assembles the complete AMbER system of the paper: the
// offline stage (RDF → data multigraph G, then index ensemble I = {A,S,N})
// and the online stage (SPARQL → query multigraph Q → sub-multigraph
// homomorphism search). It is the implementation behind the public amber
// package and the benchmark harness.
package core

import (
	"io"
	"time"

	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// BuildStats records offline-stage costs, mirroring the paper's Table 5.
type BuildStats struct {
	// DatabaseTime is the time to transform the tripleset into G.
	DatabaseTime time.Duration
	// IndexTime is the time to build I = {A, S, N}.
	IndexTime time.Duration
	// DatabaseBytes and IndexBytes are analytic size estimates.
	DatabaseBytes int64
	IndexBytes    int64
}

// Store is an AMbER database instance: immutable after construction.
type Store struct {
	Graph *multigraph.Graph
	Index *index.Index
	Stats BuildStats
}

// NewStore builds the store from a triple slice (offline stage).
func NewStore(triples []rdf.Triple) (*Store, error) {
	var b multigraph.Builder
	start := time.Now()
	if err := b.AddAll(triples); err != nil {
		return nil, err
	}
	return finish(&b, start)
}

// NewStoreFromReader streams triples from an N-Triples / prefixed-Turtle
// reader.
func NewStoreFromReader(r io.Reader) (*Store, error) {
	var b multigraph.Builder
	start := time.Now()
	dec := rdf.NewDecoder(r)
	for {
		t, err := dec.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := b.Add(t); err != nil {
			return nil, err
		}
	}
	return finish(&b, start)
}

func finish(b *multigraph.Builder, start time.Time) (*Store, error) {
	g := b.Build()
	dbTime := time.Since(start)
	idxStart := time.Now()
	ix := index.Build(g)
	s := &Store{
		Graph: g,
		Index: ix,
		Stats: BuildStats{
			DatabaseTime:  dbTime,
			IndexTime:     time.Since(idxStart),
			DatabaseBytes: estimateGraphBytes(g),
			IndexBytes:    estimateIndexBytes(g, ix),
		},
	}
	return s, nil
}

// estimateGraphBytes is an analytic size estimate of G: adjacency entries,
// edge-type labels, attributes, and dictionary strings.
func estimateGraphBytes(g *multigraph.Graph) int64 {
	var bytes int64
	for v := 0; v < g.NumVertices(); v++ {
		vid := dict.VertexID(v)
		for _, nb := range g.Out(vid) {
			bytes += 8 + 4*int64(len(nb.Types)) // entry + types
		}
		for _, nb := range g.In(vid) {
			bytes += 8 + 4*int64(len(nb.Types))
		}
		bytes += 4 * int64(len(g.Attrs(vid)))
	}
	for i := 0; i < g.Dicts.Vertices.Len(); i++ {
		bytes += int64(len(g.Dicts.Vertices.Value(uint32(i)))) + 16
	}
	for i := 0; i < g.Dicts.EdgeTypes.Len(); i++ {
		bytes += int64(len(g.Dicts.EdgeTypes.Value(uint32(i)))) + 16
	}
	for i := 0; i < g.Dicts.Attrs.Len(); i++ {
		a := g.Dicts.Attr(dict.AttrID(i))
		bytes += int64(len(a.Predicate)+len(a.Literal)) + 24
	}
	return bytes
}

// estimateIndexBytes is an analytic size estimate of I = {A, S, N}.
func estimateIndexBytes(g *multigraph.Graph, ix *index.Index) int64 {
	var bytes int64
	bytes += 4 * int64(ix.A.Entries())                             // A postings
	bytes += int64(ix.S.Len()) * (multigraph.SynopsisFields*4 + 8) // S leaves
	// N: one trie node + one posting per (vertex, neighbour, type), twice
	// (N+ and N−).
	for v := 0; v < g.NumVertices(); v++ {
		vid := dict.VertexID(v)
		for _, nb := range g.Out(vid) {
			bytes += 2 * (16 + 8*int64(len(nb.Types)))
		}
	}
	return bytes
}

// Save writes a binary snapshot of the data multigraph. Loading it with
// LoadStore skips RDF parsing; indexes are rebuilt deterministically.
func (s *Store) Save(w io.Writer) error {
	return s.Graph.Encode(w)
}

// LoadStore reads a snapshot written by Save and rebuilds the index
// ensemble.
func LoadStore(r io.Reader) (*Store, error) {
	start := time.Now()
	g, err := multigraph.Decode(r)
	if err != nil {
		return nil, err
	}
	dbTime := time.Since(start)
	idxStart := time.Now()
	ix := index.Build(g)
	return &Store{
		Graph: g,
		Index: ix,
		Stats: BuildStats{
			DatabaseTime:  dbTime,
			IndexTime:     time.Since(idxStart),
			DatabaseBytes: estimateGraphBytes(g),
			IndexBytes:    estimateIndexBytes(g, ix),
		},
	}, nil
}

// Translate builds the query multigraph (decomposition only, no matching
// order) for a parsed SPARQL query.
func (s *Store) Translate(q *sparql.Query) (*query.Graph, error) {
	return query.Build(q, &s.Graph.Dicts)
}

// Prepare translates a parsed SPARQL query into an executable matching
// plan using the default (cost-based) planner.
func (s *Store) Prepare(q *sparql.Query) (*plan.Plan, error) {
	return s.PrepareWith(plan.Default(), q)
}

// PrepareWith translates with an explicit planner, letting experiments
// compare orderings.
func (s *Store) PrepareWith(pl plan.Planner, q *sparql.Query) (*plan.Plan, error) {
	qg, err := query.Build(q, &s.Graph.Dicts)
	if err != nil {
		return nil, err
	}
	return pl.Plan(qg, s.Index), nil
}

// PrepareString parses, translates and plans SPARQL text.
func (s *Store) PrepareString(src string) (*plan.Plan, *sparql.Query, error) {
	pq, err := sparql.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	p, err := s.Prepare(pq)
	if err != nil {
		return nil, nil, err
	}
	return p, pq, nil
}

// Count returns the number of homomorphic embeddings of the plan.
func (s *Store) Count(p *plan.Plan, opts engine.Options) (uint64, error) {
	return engine.Count(s.Graph, s.Index, p, opts)
}

// CountParallel counts embeddings with a pool of worker goroutines (the
// paper's future-work "parallel processing version"); see
// engine.CountParallel.
func (s *Store) CountParallel(p *plan.Plan, opts engine.Options, workers int) (uint64, error) {
	return engine.CountParallel(s.Graph, s.Index, p, opts, workers)
}

// Stream enumerates embeddings of the plan; see engine.Stream.
func (s *Store) Stream(p *plan.Plan, opts engine.Options, yield func([]dict.VertexID) bool) error {
	return engine.Stream(s.Graph, s.Index, p, opts, yield)
}

// Binding is one variable binding of a solution row.
type Binding struct {
	Var   string
	Value string
}

// Row is one solution: bindings in projection order.
type Row []Binding

// Select runs a SPARQL SELECT end to end and materializes the projected
// rows (translated back to IRIs via Mv⁻¹). The full extension fragment
// (DISTINCT, UNION, FILTER, OFFSET) is honoured via Execute, as is the
// query's LIMIT clause in addition to opts.Limit.
func (s *Store) Select(src string, opts engine.Options) ([]Row, error) {
	pq, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	proj := pq.Projection()
	var rows []Row
	err = s.Execute(pq, opts, func(sol Solution) bool {
		row := make(Row, len(proj))
		for i, name := range proj {
			row[i] = Binding{Var: name, Value: sol[name]}
		}
		rows = append(rows, row)
		return true
	})
	if err != nil {
		return rows, err
	}
	return rows, nil
}

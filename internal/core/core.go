// Package core assembles the complete AMbER system of the paper: the
// offline stage (RDF → data multigraph G, then index ensemble I = {A,S,N})
// and the online stage (SPARQL → query multigraph Q → sub-multigraph
// homomorphism search), extended with a live-update subsystem. It is the
// implementation behind the public amber package and the benchmark
// harness.
//
// A Store is a generation handle, not a frozen database: the current
// state is an immutable Snapshot (frozen base graph + ensemble + delta
// overlay) swapped atomically on every mutation, so readers pin a
// snapshot and never block writers or observe torn updates (MVCC).
// Writers serialize behind a mutex; past a configurable overlay size,
// background compaction rebuilds base+delta into a fresh generation —
// reusing the offline-stage Builder/index machinery — and swaps it in,
// refreshing the planner statistics as a side effect.
package core

import (
	"io"
	"sync/atomic"
	"time"

	"repro/internal/delta"
	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// BuildStats records offline-stage costs, mirroring the paper's Table 5.
type BuildStats struct {
	// DatabaseTime is the time to transform the tripleset into G.
	DatabaseTime time.Duration
	// IndexTime is the time to build I = {A, S, N}.
	IndexTime time.Duration
	// DatabaseBytes and IndexBytes are analytic size estimates.
	DatabaseBytes int64
	IndexBytes    int64
}

// Snapshot is one immutable MVCC state of a Store: a frozen base
// generation plus the delta overlay on top of it. Everything a query
// needs — probe surface, dictionaries, statistics — hangs off the
// Delta view, which wraps the base. Snapshots are safe for concurrent
// readers and remain valid (and consistent) after the store moves on.
type Snapshot struct {
	// Graph and Index are the frozen base generation.
	Graph *multigraph.Graph
	Index *index.Index
	// Delta is the overlay view (empty for a pristine generation). It is
	// the snapshot's index.Reader and dict.Resolver.
	Delta *delta.View
	// Epoch increases on every successful mutation, compaction or clear:
	// equal epochs mean identical visible data, so caches key on it.
	Epoch uint64
	// Gen counts base generations (compactions and clears).
	Gen uint64
	// Build records the base generation's offline-stage costs.
	Build BuildStats
}

// Reader returns the snapshot's probe surface.
func (sn *Snapshot) Reader() index.Reader { return sn.Delta }

// Resolver returns the snapshot's dictionary surface.
func (sn *Snapshot) Resolver() dict.Resolver { return sn.Delta }

// Store is an AMbER database instance: a handle over the current
// Snapshot. Reads are lock-free; mutations serialize internally. All
// methods are safe for concurrent use.
//
// A store is in-memory by default; AttachWAL adds write-ahead
// durability: every mutation is logged (and fsynced, per policy) before
// it is published, and reopening the log replays acknowledged writes
// that a crash would otherwise lose.
type Store struct {
	live liveState // snapshot pointer, writer lock, compaction machinery

	// dur is the write-ahead log attachment; nil for in-memory stores.
	dur atomic.Pointer[durable]
}

// NewStore builds the store from a triple slice (offline stage).
func NewStore(triples []rdf.Triple) (*Store, error) {
	var b multigraph.Builder
	start := time.Now()
	if err := b.AddAll(triples); err != nil {
		return nil, err
	}
	return finish(&b, start)
}

// NewStoreFromReader streams triples from an N-Triples / prefixed-Turtle
// reader.
func NewStoreFromReader(r io.Reader) (*Store, error) {
	var b multigraph.Builder
	start := time.Now()
	dec := rdf.NewDecoder(r)
	for {
		t, err := dec.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := b.Add(t); err != nil {
			return nil, err
		}
	}
	return finish(&b, start)
}

func finish(b *multigraph.Builder, start time.Time) (*Store, error) {
	g := b.Build()
	dbTime := time.Since(start)
	idxStart := time.Now()
	ix := index.Build(g)
	s := &Store{}
	s.live.init(&Snapshot{
		Graph: g,
		Index: ix,
		Delta: delta.NewView(g, ix),
		Build: BuildStats{
			DatabaseTime:  dbTime,
			IndexTime:     time.Since(idxStart),
			DatabaseBytes: estimateGraphBytes(g),
			IndexBytes:    estimateIndexBytes(g, ix),
		},
	})
	return s, nil
}

// Snapshot pins the current MVCC state. The returned snapshot stays
// consistent forever; run a whole query against one snapshot.
func (s *Store) Snapshot() *Snapshot { return s.live.snapshot() }

// Graph returns the current base generation's data multigraph. Note it
// excludes any uncompacted delta; use Snapshot().Delta for merged reads.
func (s *Store) Graph() *multigraph.Graph { return s.Snapshot().Graph }

// Index returns the current base generation's index ensemble.
func (s *Store) Index() *index.Index { return s.Snapshot().Index }

// BuildInfo returns the current base generation's offline-stage costs.
func (s *Store) BuildInfo() BuildStats { return s.Snapshot().Build }

// Epoch returns the current data version; it increases on every
// mutation, compaction and clear.
func (s *Store) Epoch() uint64 { return s.Snapshot().Epoch }

// estimateGraphBytes is an analytic size estimate of G: adjacency entries,
// edge-type labels, attributes, and dictionary strings.
func estimateGraphBytes(g *multigraph.Graph) int64 {
	var bytes int64
	for v := 0; v < g.NumVertices(); v++ {
		vid := dict.VertexID(v)
		for _, nb := range g.Out(vid) {
			bytes += 8 + 4*int64(len(nb.Types)) // entry + types
		}
		for _, nb := range g.In(vid) {
			bytes += 8 + 4*int64(len(nb.Types))
		}
		bytes += 4 * int64(len(g.Attrs(vid)))
	}
	for i := 0; i < g.Dicts.Vertices.Len(); i++ {
		bytes += int64(len(g.Dicts.Vertices.Value(uint32(i)))) + 16
	}
	for i := 0; i < g.Dicts.EdgeTypes.Len(); i++ {
		bytes += int64(len(g.Dicts.EdgeTypes.Value(uint32(i)))) + 16
	}
	for i := 0; i < g.Dicts.Attrs.Len(); i++ {
		a := g.Dicts.Attr(dict.AttrID(i))
		bytes += int64(len(a.Predicate)+len(a.Lexical)+len(a.Datatype)+len(a.Lang)) + 24
	}
	return bytes
}

// estimateIndexBytes is an analytic size estimate of I = {A, S, N}.
func estimateIndexBytes(g *multigraph.Graph, ix *index.Index) int64 {
	var bytes int64
	bytes += 4 * int64(ix.A.Entries())                             // A postings
	bytes += int64(ix.S.Len()) * (multigraph.SynopsisFields*4 + 8) // S leaves
	// N: one trie node + one posting per (vertex, neighbour, type), twice
	// (N+ and N−).
	for v := 0; v < g.NumVertices(); v++ {
		vid := dict.VertexID(v)
		for _, nb := range g.Out(vid) {
			bytes += 2 * (16 + 8*int64(len(nb.Types)))
		}
	}
	return bytes
}

// Save writes a binary snapshot of the merged data multigraph (base plus
// any uncompacted delta). Loading it with LoadStore skips RDF parsing;
// indexes are rebuilt deterministically.
func (s *Store) Save(w io.Writer) error {
	sn := s.Snapshot()
	if sn.Delta.Empty() {
		return sn.Graph.Encode(w)
	}
	g, err := materialize(sn.Delta)
	if err != nil {
		return err
	}
	return g.Encode(w)
}

// materialize rebuilds a frozen graph from a delta view's merged triple
// stream (the compaction and snapshot-save workhorse).
func materialize(v *delta.View) (*multigraph.Graph, error) {
	var b multigraph.Builder
	var addErr error
	v.Triples(func(t rdf.Triple) bool {
		addErr = b.Add(t)
		return addErr == nil
	})
	if addErr != nil {
		return nil, addErr
	}
	return b.Build(), nil
}

// LoadStore reads a snapshot written by Save and rebuilds the index
// ensemble.
func LoadStore(r io.Reader) (*Store, error) {
	start := time.Now()
	g, err := multigraph.Decode(r)
	if err != nil {
		return nil, err
	}
	dbTime := time.Since(start)
	idxStart := time.Now()
	ix := index.Build(g)
	s := &Store{}
	s.live.init(&Snapshot{
		Graph: g,
		Index: ix,
		Delta: delta.NewView(g, ix),
		Build: BuildStats{
			DatabaseTime:  dbTime,
			IndexTime:     time.Since(idxStart),
			DatabaseBytes: estimateGraphBytes(g),
			IndexBytes:    estimateIndexBytes(g, ix),
		},
	})
	return s, nil
}

// Translate builds the query multigraph (decomposition only, no matching
// order) for a parsed SPARQL query against the current snapshot.
func (s *Store) Translate(q *sparql.Query) (*query.Graph, error) {
	return query.Build(q, s.Snapshot().Resolver())
}

// Prepare translates a parsed SPARQL query into an executable matching
// plan using the default (cost-based) planner.
func (s *Store) Prepare(q *sparql.Query) (*plan.Plan, error) {
	return s.PrepareWith(plan.Default(), q)
}

// PrepareWith translates with an explicit planner, letting experiments
// compare orderings. The plan is built against the current snapshot; a
// mutation invalidates it (PreparedQuery handles revalidation — use it
// when queries outlive updates).
func (s *Store) PrepareWith(pl plan.Planner, q *sparql.Query) (*plan.Plan, error) {
	sn := s.Snapshot()
	qg, err := query.Build(q, sn.Resolver())
	if err != nil {
		return nil, err
	}
	return pl.Plan(qg, sn.Reader()), nil
}

// PrepareString parses, translates and plans SPARQL text.
func (s *Store) PrepareString(src string) (*plan.Plan, *sparql.Query, error) {
	pq, err := sparql.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	p, err := s.Prepare(pq)
	if err != nil {
		return nil, nil, err
	}
	return p, pq, nil
}

// Count returns the number of homomorphic embeddings of the plan against
// the current snapshot (the plan must have been prepared on it).
func (s *Store) Count(p *plan.Plan, opts engine.Options) (uint64, error) {
	return engine.Count(s.Snapshot().Reader(), p, opts)
}

// CountParallel counts embeddings with a pool of worker goroutines (the
// paper's future-work "parallel processing version"); see
// engine.CountParallel.
func (s *Store) CountParallel(p *plan.Plan, opts engine.Options, workers int) (uint64, error) {
	return engine.CountParallel(s.Snapshot().Reader(), p, opts, workers)
}

// Stream enumerates embeddings of the plan; see engine.Stream.
func (s *Store) Stream(p *plan.Plan, opts engine.Options, yield func([]dict.VertexID) bool) error {
	return engine.Stream(s.Snapshot().Reader(), p, opts, yield)
}

// Binding is one variable binding of a solution row. Value is the term's
// text (IRI, blank label, or literal lexical form — empty when the
// variable is unbound in this row); Term carries the full typed term.
type Binding struct {
	Var   string
	Value string
	Term  rdf.Term
}

// Row is one solution: bindings in projection order.
type Row []Binding

// Select runs a SPARQL SELECT end to end and materializes the projected
// rows (translated back to terms via Mv⁻¹/Ma⁻¹). The full extension
// fragment (DISTINCT, UNION, FILTER, OFFSET) is honoured via Execute, as
// is the query's LIMIT clause in addition to opts.Limit.
func (s *Store) Select(src string, opts engine.Options) ([]Row, error) {
	pq, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	proj := pq.Projection()
	var rows []Row
	err = s.Execute(pq, opts, func(sol Solution) bool {
		row := make(Row, len(proj))
		for i, name := range proj {
			t := sol[name]
			row[i] = Binding{Var: name, Value: t.Value, Term: t}
		}
		rows = append(rows, row)
		return true
	})
	if err != nil {
		return rows, err
	}
	return rows, nil
}

package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/sparql"
)

func parse(t *testing.T, src string) *sparql.Query {
	t.Helper()
	pq, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return pq
}

func TestIsPlain(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`SELECT ?s WHERE { ?s <http://y/p> ?o }`, true},
		{`SELECT ?s WHERE { ?s <http://y/p> ?o } LIMIT 3`, true},
		{`SELECT DISTINCT ?s WHERE { ?s <http://y/p> ?o }`, false},
		{`SELECT ?s WHERE { ?s <http://y/p> ?o } OFFSET 1`, false},
		{`SELECT ?s WHERE { ?s <http://y/p> ?o . FILTER (?s != ?o) }`, false},
		{`SELECT ?s WHERE { { ?s <http://y/p> ?o } UNION { ?s <http://y/q> ?o } }`, false},
	}
	for _, tc := range cases {
		if got := IsPlain(parse(t, tc.src)); got != tc.want {
			t.Errorf("IsPlain(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestExecuteDistinctUnionFilters(t *testing.T) {
	s := newStore(t)
	pq := parse(t, `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT DISTINCT ?p WHERE {
  { ?p y:wasBornIn ?c } UNION { ?p y:diedIn ?c }
  FILTER strstarts(str(?p), "http://dbpedia.org/resource/A")
}`)
	var got []string
	if err := s.Execute(pq, engine.Options{}, func(sol Solution) bool {
		got = append(got, sol["p"].Value)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.HasSuffix(got[0], "Amy_Winehouse") {
		t.Errorf("Execute result = %v", got)
	}
}

func TestExecuteEarlyStop(t *testing.T) {
	s := newStore(t)
	pq := parse(t, `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a WHERE { ?a y:livedIn ?b }`)
	calls := 0
	if err := s.Execute(pq, engine.Options{}, func(Solution) bool {
		calls++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestExecuteOffsetBeyondEnd(t *testing.T) {
	s := newStore(t)
	pq := parse(t, `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a WHERE { ?a y:livedIn ?b } OFFSET 50`)
	n := 0
	if err := s.Execute(pq, engine.Options{}, func(Solution) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("rows = %d, want 0", n)
	}
}

func TestExecuteFilterVariableVariants(t *testing.T) {
	s := newStore(t)
	// ?a regex ?b: contains test between IRIs — London contains London.
	pq := parse(t, `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE {
  ?a y:isPartOf ?b .
  FILTER (?a = ?a)
  FILTER regex(?a, ?a)
  FILTER strstarts(?a, ?a)
}`)
	n := 0
	if err := s.Execute(pq, engine.Options{}, func(Solution) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("rows = %d, want 2 (both isPartOf edges)", n)
	}
	// var != var filter removing everything.
	pq = parse(t, `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:isPartOf ?b . FILTER (?a != ?a) }`)
	n = 0
	if err := s.Execute(pq, engine.Options{}, func(Solution) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("rows = %d, want 0", n)
	}
}

func TestSaveAndLoadStore(t *testing.T) {
	s := newStore(t)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Graph().NumVertices() != s.Graph().NumVertices() {
		t.Errorf("vertices = %d, want %d", loaded.Graph().NumVertices(), s.Graph().NumVertices())
	}
	if loaded.BuildInfo().DatabaseBytes != s.BuildInfo().DatabaseBytes {
		t.Errorf("size estimate differs after load")
	}
	rows, err := loaded.Select(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b }`, engine.Options{})
	if err != nil || len(rows) != 3 {
		t.Errorf("rows after load = %d, %v", len(rows), err)
	}
	if _, err := LoadStore(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestCountParallelStore(t *testing.T) {
	s := newStore(t)
	qg, _, err := s.PrepareString(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.CountParallel(qg, engine.Options{}, 4)
	if err != nil || n != 3 {
		t.Errorf("CountParallel = %d, %v", n, err)
	}
}

func TestSelectWithUnboundProjection(t *testing.T) {
	s := newStore(t)
	rows, err := s.Select(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?p ?band WHERE {
  { ?p y:wasMarriedTo ?x } UNION { ?p y:wasPartOf ?band }
}`, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	unbound := 0
	for _, r := range rows {
		if r[1].Var != "band" {
			t.Errorf("projection order wrong: %v", r)
		}
		if r[1].Value == "" {
			unbound++
		}
	}
	if unbound != 1 {
		t.Errorf("unbound band rows = %d, want 1", unbound)
	}
}

func TestExecuteUnsatBranchSkipped(t *testing.T) {
	s := newStore(t)
	// First branch unsatisfiable (unknown predicate), second fine: UNION
	// must still deliver the second branch's rows.
	pq := parse(t, `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?p WHERE {
  { ?p y:noSuchPredicate ?c } UNION { ?p y:wasMarriedTo ?c }
}`)
	n := 0
	if err := s.Execute(pq, engine.Options{}, func(Solution) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("rows = %d, want 1", n)
	}
}

func TestExplain(t *testing.T) {
	s := newStore(t)
	out, err := s.Explain(`
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT ?X0 ?X1 ?X3 ?X5 WHERE {
  ?X0 y:wasBornIn ?X1 .
  ?X1 y:isPartOf ?X2 .
  ?X2 y:hasCapital ?X1 .
  ?X1 y:hasStadium ?X4 .
  ?X3 y:wasBornIn ?X1 .
  ?X3 y:diedIn ?X1 .
  ?X3 y:wasMarriedTo ?X6 .
  ?X3 y:wasPartOf ?X5 .
  ?X5 y:wasFormedIn ?X1 .
  ?X4 y:hasCapacityOf "90000" .
  ?X5 y:hasName "MCA_Band" .
  ?X5 y:foundedIn "1994" .
  ?X3 y:livedIn x:United_States .
}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"planner: cost", "core[0] ?X1",
		"satellites=[?X0 ?X2 ?X4]", "est=", "actual="} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
	// The heuristic planner must also render, with its own name.
	pq := parse(t, `
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?a ?b WHERE { ?a y:livedIn ?b }`)
	hout, err := s.ExplainQuery(plan.Heuristic(), pq)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hout, "planner: heuristic") || !strings.Contains(hout, "actual=") {
		t.Errorf("heuristic explain:\n%s", hout)
	}
}

func TestExplainUnsatAndErrors(t *testing.T) {
	s := newStore(t)
	out, err := s.Explain(`PREFIX y: <http://dbpedia.org/ontology/> SELECT ?a ?b WHERE { ?a y:isMarriedTo ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "UNSATISFIABLE") {
		t.Errorf("unsat not reported:\n%s", out)
	}
	if _, err := s.Explain(`SELEKT`); err == nil {
		t.Error("parse error not surfaced")
	}
	out, err = s.Explain(`
PREFIX y: <http://dbpedia.org/ontology/>
PREFIX x: <http://dbpedia.org/resource/>
SELECT DISTINCT ?a WHERE { x:London y:isPartOf x:England . ?a y:livedIn ?b }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ground checks") || !strings.Contains(out, "extensions") {
		t.Errorf("ground/extension info missing:\n%s", out)
	}
}

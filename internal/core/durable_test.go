package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
)

// walBatch is one scripted durable write: a mutation batch or a clear.
type walBatch struct {
	adds, dels []rdf.Triple
	clear      bool
}

func tri(s, p, o string) rdf.Triple {
	return rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: rdf.NewIRI(o)}
}

func lit(s, p, o string) rdf.Triple {
	return rdf.Triple{S: rdf.NewIRI(s), P: rdf.NewIRI(p), O: rdf.NewLiteral(o)}
}

// script returns a deterministic update sequence exercising adds, deletes,
// attribute triples and a mid-sequence clear.
func script() []walBatch {
	var bs []walBatch
	for i := 0; i < 4; i++ {
		bs = append(bs, walBatch{adds: []rdf.Triple{
			tri(fmt.Sprintf("http://x/s%d", i), "http://x/p", fmt.Sprintf("http://x/o%d", i)),
			lit(fmt.Sprintf("http://x/s%d", i), "http://x/name", fmt.Sprintf("node %d", i)),
		}})
	}
	bs = append(bs, walBatch{dels: []rdf.Triple{tri("http://x/s1", "http://x/p", "http://x/o1")}})
	bs = append(bs, walBatch{clear: true})
	for i := 0; i < 3; i++ {
		bs = append(bs, walBatch{adds: []rdf.Triple{
			tri(fmt.Sprintf("http://y/a%d", i), "http://y/q", "http://y/hub"),
		}})
	}
	return bs
}

func applyBatch(t *testing.T, s *Store, b walBatch) {
	t.Helper()
	var err error
	if b.clear {
		err = s.Clear()
	} else {
		err = s.Mutate(b.adds, b.dels)
	}
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
}

func triples(s *Store) int { return s.Snapshot().Delta.NumTriples() }

func newEmpty(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDurableReopenEqualsRebuild(t *testing.T) {
	dir := t.TempDir()
	s1 := newEmpty(t)
	if n, err := s1.AttachWAL(dir, WALOptions{}); err != nil || n != 0 {
		t.Fatalf("AttachWAL: n=%d err=%v", n, err)
	}
	bs := script()
	for _, b := range bs {
		applyBatch(t, s1, b)
	}
	want := triples(s1)
	if err := s1.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Mutate([]rdf.Triple{tri("http://x/late", "http://x/p", "http://x/o")}, nil); err == nil {
		t.Fatal("Mutate succeeded after CloseWAL")
	}

	// Reopen: replay must land exactly on the acknowledged state...
	s2 := newEmpty(t)
	n, err := s2.AttachWAL(dir, WALOptions{})
	if err != nil {
		t.Fatalf("reopen AttachWAL: %v", err)
	}
	if n != len(bs) {
		t.Fatalf("replayed %d records, want %d", n, len(bs))
	}
	if got := triples(s2); got != want {
		t.Fatalf("replayed store has %d triples, want %d", got, want)
	}
	// ...which equals a from-scratch, in-memory rebuild of the sequence.
	ref := newEmpty(t)
	for _, b := range bs {
		applyBatch(t, ref, b)
	}
	if got, exp := triples(s2), triples(ref); got != exp {
		t.Fatalf("replayed store %d triples, rebuild %d", got, exp)
	}
}

func TestCheckpointTruncatesAndSkipsReplay(t *testing.T) {
	dir := t.TempDir()
	s := newEmpty(t)
	if _, err := s.AttachWAL(dir, WALOptions{SegmentBytes: 256}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		applyBatch(t, s, walBatch{adds: []rdf.Triple{
			tri(fmt.Sprintf("http://x/s%d", i), "http://x/p", "http://x/o"),
		}})
	}
	before := s.DurabilityInfo()
	if before.Segments < 2 {
		t.Fatalf("want rotation before checkpoint, got %d segments", before.Segments)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	after := s.DurabilityInfo()
	if after.Segments != 1 || after.WALBytes != 0 {
		t.Fatalf("checkpoint left %d segments / %d bytes", after.Segments, after.WALBytes)
	}
	if after.CheckpointSeq != before.LastSeq {
		t.Fatalf("CheckpointSeq %d, want %d", after.CheckpointSeq, before.LastSeq)
	}
	if _, err := os.Stat(CheckpointSnapshotPath(dir)); err != nil {
		t.Fatalf("checkpoint snapshot missing: %v", err)
	}
	// Two post-checkpoint updates are the only replay work left.
	applyBatch(t, s, walBatch{adds: []rdf.Triple{tri("http://x/post1", "http://x/p", "http://x/o")}})
	applyBatch(t, s, walBatch{adds: []rdf.Triple{tri("http://x/post2", "http://x/p", "http://x/o")}})
	want := triples(s)
	s.CloseWAL()

	f, err := os.Open(CheckpointSnapshotPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := LoadStore(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	n, err := s2.AttachWAL(dir, WALOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replayed %d records after checkpoint, want 2", n)
	}
	if got := triples(s2); got != want {
		t.Fatalf("recovered %d triples, want %d", got, want)
	}
}

// TestStoreCrashPointRecovery truncates the WAL at every byte offset and
// asserts the recovered store is a valid prefix state: its triple count
// equals a from-scratch rebuild of exactly the surviving batches.
func TestStoreCrashPointRecovery(t *testing.T) {
	src := t.TempDir()
	s := newEmpty(t)
	if _, err := s.AttachWAL(src, WALOptions{}); err != nil {
		t.Fatal(err)
	}
	bs := script()
	// prefixCount[k] = triples after the first k batches.
	ref := newEmpty(t)
	prefixCount := []int{triples(ref)}
	segPath := ""
	var ends []int64
	for _, b := range bs {
		applyBatch(t, s, b)
		applyBatch(t, ref, b)
		prefixCount = append(prefixCount, triples(ref))
		if segPath == "" {
			m, err := filepath.Glob(filepath.Join(src, "wal-*.seg"))
			if err != nil || len(m) != 1 {
				t.Fatalf("expected one segment, got %v (%v)", m, err)
			}
			segPath = m[0]
		}
		info, err := os.Stat(segPath)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, info.Size())
	}
	s.CloseWAL()
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	complete := func(cut int64) int {
		k := 0
		for k < len(ends) && ends[k] <= cut {
			k++
		}
		return k
	}

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segPath)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec := newEmpty(t)
		n, err := rec.AttachWAL(dir, WALOptions{})
		if err != nil {
			t.Fatalf("cut=%d: AttachWAL: %v", cut, err)
		}
		j := complete(cut)
		if n != j {
			t.Fatalf("cut=%d: replayed %d batches, want %d", cut, n, j)
		}
		if got, want := triples(rec), prefixCount[j]; got != want {
			t.Fatalf("cut=%d: recovered %d triples, rebuild of %d batches has %d", cut, got, j, want)
		}
		rec.CloseWAL()
	}
}

func TestCheckpointOnCompact(t *testing.T) {
	dir := t.TempDir()
	s := newEmpty(t)
	if _, err := s.AttachWAL(dir, WALOptions{CheckpointOnCompact: true}); err != nil {
		t.Fatal(err)
	}
	s.SetCompactThreshold(8)
	for i := 0; i < 20; i++ {
		applyBatch(t, s, walBatch{adds: []rdf.Triple{
			tri(fmt.Sprintf("http://x/s%d", i), "http://x/p", "http://x/o"),
		}})
	}
	s.WaitCompaction()
	if err := s.Compact(); err != nil { // force a final fold + checkpoint
		t.Fatal(err)
	}
	di := s.DurabilityInfo()
	if di.Checkpoints == 0 {
		t.Fatalf("no automatic checkpoint ran: %+v", di)
	}
	if di.LastCheckpointError != "" {
		t.Fatalf("auto checkpoint failed: %s", di.LastCheckpointError)
	}
	want := triples(s)
	s.CloseWAL()

	f, err := os.Open(CheckpointSnapshotPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := LoadStore(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.AttachWAL(dir, WALOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := triples(s2); got != want {
		t.Fatalf("recovered %d triples, want %d", got, want)
	}
}

func TestDurabilityMiscErrors(t *testing.T) {
	s := newEmpty(t)
	if err := s.Checkpoint(); err != ErrNotDurable {
		t.Fatalf("Checkpoint on in-memory store: %v", err)
	}
	if err := s.SyncWAL(); err != nil {
		t.Fatalf("SyncWAL on in-memory store: %v", err)
	}
	if err := s.CloseWAL(); err != nil {
		t.Fatalf("CloseWAL on in-memory store: %v", err)
	}
	dir := t.TempDir()
	if _, err := s.AttachWAL(dir, WALOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AttachWAL(dir, WALOptions{}); err == nil {
		t.Fatal("double AttachWAL succeeded")
	}
	if err := s.DetachWAL(); err != nil {
		t.Fatal(err)
	}
	if s.DurabilityInfo().Enabled {
		t.Fatal("durability still enabled after detach")
	}
	// Detached stores mutate freely again, unlogged.
	if err := s.Mutate([]rdf.Triple{tri("http://x/s", "http://x/p", "http://x/o")}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointAfterCloseFailsFast: a checkpoint attempted after the WAL
// closed (e.g. the old generation of a server reload) must fail before
// touching the snapshot file — overwriting a successor's base.snap would
// silently roll back its acknowledged updates.
func TestCheckpointAfterCloseFailsFast(t *testing.T) {
	dir := t.TempDir()
	s := newEmpty(t)
	if _, err := s.AttachWAL(dir, WALOptions{}); err != nil {
		t.Fatal(err)
	}
	applyBatch(t, s, walBatch{adds: []rdf.Triple{tri("http://x/s", "http://x/p", "http://x/o")}})
	if err := s.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err == nil {
		t.Fatal("Checkpoint succeeded on a closed WAL")
	}
	if _, err := os.Stat(CheckpointSnapshotPath(dir)); !os.IsNotExist(err) {
		t.Fatalf("closed-WAL checkpoint touched base.snap (stat err: %v)", err)
	}
	// Mutations on the closed store carry the durability sentinel.
	err := s.Mutate([]rdf.Triple{tri("http://x/s2", "http://x/p", "http://x/o")}, nil)
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("Mutate after close: %v, want ErrDurability", err)
	}
	if err := s.Clear(); !errors.Is(err, ErrDurability) {
		t.Fatalf("Clear after close: %v, want ErrDurability", err)
	}
}

package core

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sparql"
)

// TestExecuteFillsMeter verifies the governance plumbing end to end at
// the core layer: a ResourceMeter attached to the trace in the context
// receives the engine's candidate/visit/intersection accounting and the
// plan-level progress.
func TestExecuteFillsMeter(t *testing.T) {
	s := newStore(t)
	pq, err := sparql.Parse(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?p ?c WHERE { ?p y:wasBornIn ?c . ?p y:livedIn ?e . }`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.PrepareQuery(pq)
	if err != nil {
		t.Fatal(err)
	}

	tr := obs.NewTraceID("meter-test", "q")
	meter := obs.NewResourceMeter()
	tr.SetMeter(meter)
	ctx := obs.ContextWithTrace(context.Background(), tr)

	rows := 0
	if err := p.Execute(engine.Options{Ctx: ctx}, func(Solution) bool { rows++; return true }); err != nil {
		t.Fatal(err)
	}
	if rows == 0 {
		t.Fatal("query returned no rows; fixture broken")
	}
	v := meter.View()
	if v.VerticesVisited == 0 {
		t.Error("meter recorded no vertex visits")
	}
	if v.Candidates == 0 {
		t.Error("meter recorded no candidates")
	}
	if v.TotalLevels == 0 {
		t.Error("meter recorded no plan levels")
	}
	if v.Level == 0 || v.Level > v.TotalLevels {
		t.Errorf("progress = %d/%d", v.Level, v.TotalLevels)
	}
	if v.OverlayProbes != 0 {
		t.Errorf("overlay probes = %d on a compacted base", v.OverlayProbes)
	}
	// The trace view carries the finished meter for /debug/traces and the
	// slow-query log.
	tr.Finish("ok", uint64(rows))
	tv := tr.View()
	if tv.Resources == nil || tv.Resources.VerticesVisited != v.VerticesVisited {
		t.Errorf("trace view resources = %+v, want meter %+v", tv.Resources, v)
	}
}

// TestExecuteMeterCountsOverlayProbes checks that index probes served
// through a non-empty overlay are attributed.
func TestExecuteMeterCountsOverlayProbes(t *testing.T) {
	s := newStore(t)
	if err := s.UpdateString(`INSERT DATA {
		<http://dbpedia.org/resource/New_Person> <http://dbpedia.org/ontology/wasBornIn> <http://dbpedia.org/resource/London> .
	}`); err != nil {
		t.Fatal(err)
	}
	pq, err := sparql.Parse(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?p WHERE { ?p y:wasBornIn ?c . }`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.PrepareQuery(pq)
	if err != nil {
		t.Fatal(err)
	}
	meter := obs.NewResourceMeter()
	n := 0
	if err := p.Execute(engine.Options{Meter: meter}, func(Solution) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no rows")
	}
	if meter.View().OverlayProbes == 0 {
		t.Error("no overlay probes counted with a live delta")
	}
}

// TestCountParallelSharesMeter verifies the parallel path: workers flush
// worker-local counters into the one shared meter.
func TestCountParallelSharesMeter(t *testing.T) {
	s := newStore(t)
	pq, err := sparql.Parse(`
PREFIX y: <http://dbpedia.org/ontology/>
SELECT ?p ?c WHERE { ?p y:wasBornIn ?c . }`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.PrepareQuery(pq)
	if err != nil {
		t.Fatal(err)
	}
	meter := obs.NewResourceMeter()
	n, err := p.CountPlanParallel(engine.Options{Meter: meter}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no embeddings")
	}
	if meter.Visits() == 0 {
		t.Error("parallel workers flushed no visits")
	}
}

package core

import (
	"fmt"
	"io"
	"os"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// ApplyUpdate executes a parsed SPARQL 1.1 Update request: operations
// run in order, each one atomically visible. There is no cross-operation
// transaction — on error, operations already executed stay applied and
// the failing one reports which it was (SILENT suppresses the failure).
func (s *Store) ApplyUpdate(u *sparql.Update) error {
	for i, op := range u.Ops {
		var err error
		switch op.Kind {
		case sparql.UpInsertData:
			err = s.Mutate(op.Triples, nil)
		case sparql.UpDeleteData:
			err = s.Mutate(nil, op.Triples)
		case sparql.UpClear:
			err = s.Clear()
		case sparql.UpLoad:
			err = s.load(op.Source)
		default:
			err = fmt.Errorf("core: unsupported update operation %v", op.Kind)
		}
		if err != nil && !op.Silent {
			return fmt.Errorf("core: update operation %d (%v): %w", i+1, op.Kind, err)
		}
	}
	return nil
}

// UpdateString parses and executes SPARQL Update text.
func (s *Store) UpdateString(src string) error {
	u, err := sparql.ParseUpdate(src)
	if err != nil {
		return err
	}
	return s.ApplyUpdate(u)
}

// load reads an N-Triples / prefixed-Turtle document from a local file
// and bulk-inserts its triples as one atomic batch.
func (s *Store) load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var triples []rdf.Triple
	dec := rdf.NewDecoder(f)
	for {
		t, err := dec.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		triples = append(triples, t)
	}
	return s.Mutate(triples, nil)
}

package core

import (
	"strings"

	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/sparql"
)

// Solution is one complete embedding translated back to IRIs: variable
// name → IRI. Variables that do not occur in the matched UNION branch are
// absent from the map (SPARQL's unbound).
type Solution map[string]string

// IsPlain reports whether the query uses only the paper's core fragment
// (single BGP, no DISTINCT/FILTER/OFFSET), for which the factorized Count
// path is available.
func IsPlain(pq *sparql.Query) bool {
	return !pq.Distinct && len(pq.Filters) == 0 && len(pq.UnionBranches) == 0 && pq.Offset == 0
}

// PreparedQuery is a query translated and planned once against a Store
// and ready to execute many times: every UNION branch's query multigraph
// is built, its matching plan computed (including the per-vertex candidate
// constraints of Algorithm 1) and its FILTERs compiled up front, so
// repeated executions skip translation and planning entirely. A
// PreparedQuery is tied to the Store that prepared it (the cached plans
// reference its index) and is safe for concurrent use.
type PreparedQuery struct {
	store    *Store
	pq       *sparql.Query
	proj     []string
	plain    bool
	branches []preparedBranch
}

// preparedBranch is one UNION branch: its cached matching plan plus the
// filters resolved against that branch's variables.
type preparedBranch struct {
	pl      *plan.Plan
	filters []compiledFilter
}

// PrepareQuery translates a parsed query into its executable form using
// the default planner.
func (s *Store) PrepareQuery(pq *sparql.Query) (*PreparedQuery, error) {
	return s.PrepareQueryWith(plan.Default(), pq)
}

// PrepareQueryWith translates and plans with an explicit planner.
func (s *Store) PrepareQueryWith(pl plan.Planner, pq *sparql.Query) (*PreparedQuery, error) {
	p := &PreparedQuery{
		store: s,
		pq:    pq,
		proj:  pq.Projection(),
		plain: IsPlain(pq),
	}
	for _, branch := range pq.Branches() {
		bq := &sparql.Query{Prefixes: pq.Prefixes, Star: true, Patterns: branch}
		qg, err := query.Build(bq, &s.Graph.Dicts)
		if err != nil {
			return nil, err
		}
		bp := pl.Plan(qg, s.Index)
		p.branches = append(p.branches, preparedBranch{
			pl:      bp,
			filters: s.compileFilters(pq.Filters, qg),
		})
	}
	return p, nil
}

// Query returns the parsed query the PreparedQuery was built from.
func (p *PreparedQuery) Query() *sparql.Query { return p.pq }

// Projection returns the projected variable names.
func (p *PreparedQuery) Projection() []string { return p.proj }

// Plain reports whether the query is in the paper's core fragment (see
// IsPlain), for which the factorized Count path applies.
func (p *PreparedQuery) Plain() bool { return p.plain }

// Plan returns the cached matching plan of a plain (single-branch) query,
// for the factorized Count/CountParallel paths; nil otherwise.
func (p *PreparedQuery) Plan() *plan.Plan {
	if p.plain && len(p.branches) == 1 {
		return p.branches[0].pl
	}
	return nil
}

// Plans returns every branch's cached plan (diagnostics; Explain).
func (p *PreparedQuery) Plans() []*plan.Plan {
	out := make([]*plan.Plan, len(p.branches))
	for i := range p.branches {
		out[i] = p.branches[i].pl
	}
	return out
}

// Execute evaluates a parsed query with the full extension fragment:
// UNION branches, FILTER constraints, DISTINCT, OFFSET and LIMIT. yield
// receives complete solutions (all variables of the matched branch);
// returning false stops evaluation.
//
// Row-level modifiers are applied in SPARQL order: filters per solution,
// then projection-level DISTINCT, then OFFSET, then LIMIT.
func (s *Store) Execute(pq *sparql.Query, opts engine.Options, yield func(Solution) bool) error {
	p, err := s.PrepareQuery(pq)
	if err != nil {
		return err
	}
	return p.Execute(opts, yield)
}

// Execute runs the prepared query; see Store.Execute for semantics.
func (p *PreparedQuery) Execute(opts engine.Options, yield func(Solution) bool) error {
	s, pq := p.store, p.pq
	limit := pq.Limit
	if opts.Limit > 0 && (limit == 0 || opts.Limit < limit) {
		limit = opts.Limit
	}

	// Only a plain query may push the limit into the engine.
	engOpts := opts
	engOpts.Limit = 0
	if p.plain {
		engOpts.Limit = limit
	}

	var (
		seen    map[string]bool
		skipped int
		emitted int
		stop    bool
	)
	if pq.Distinct {
		seen = make(map[string]bool)
	}

	emit := func(sol Solution) bool {
		if pq.Distinct {
			key := distinctKey(p.proj, sol)
			if seen[key] {
				return true
			}
			seen[key] = true
		}
		if skipped < pq.Offset {
			skipped++
			return true
		}
		if !yield(sol) {
			stop = true
			return false
		}
		emitted++
		if limit > 0 && emitted >= limit {
			stop = true
			return false
		}
		return true
	}

	for _, branch := range p.branches {
		if stop {
			break
		}
		filters := branch.filters
		qg := branch.pl.Query
		err := s.Stream(branch.pl, engOpts, func(asg []dict.VertexID) bool {
			for _, f := range filters {
				if !f(asg) {
					return true
				}
			}
			sol := make(Solution, len(qg.Vars))
			for u := range qg.Vars {
				sol[qg.Vars[u].Name] = s.Graph.Dicts.VertexIRI(asg[u])
			}
			return emit(sol)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// distinctKey builds a deduplication key over the projected variables.
func distinctKey(proj []string, sol Solution) string {
	parts := make([]string, len(proj))
	for i, v := range proj {
		parts[i] = sol[v]
	}
	return strings.Join(parts, "\x00")
}

// compiledFilter checks one FILTER against an embedding.
type compiledFilter func(asg []dict.VertexID) bool

// compileFilters resolves filter variables against the branch's query
// graph. A filter whose variable is absent from this branch is vacuously
// true for the branch (the variable is unbound there).
func (s *Store) compileFilters(fs []sparql.Filter, qg *query.Graph) []compiledFilter {
	text := func(u query.VertexID, pred func(string) bool) compiledFilter {
		return func(asg []dict.VertexID) bool {
			return pred(s.Graph.Dicts.VertexIRI(asg[u]))
		}
	}
	var out []compiledFilter
	for _, f := range fs {
		lhs, ok := qg.VarIndex[f.LHS]
		if !ok {
			continue
		}
		if f.RHS.Kind == sparql.Var {
			rhs, ok := qg.VarIndex[f.RHS.Value]
			if !ok {
				continue
			}
			switch f.Op {
			case sparql.FilterEq:
				out = append(out, func(asg []dict.VertexID) bool { return asg[lhs] == asg[rhs] })
			case sparql.FilterNe:
				out = append(out, func(asg []dict.VertexID) bool { return asg[lhs] != asg[rhs] })
			case sparql.FilterRegex:
				out = append(out, func(asg []dict.VertexID) bool {
					return strings.Contains(s.Graph.Dicts.VertexIRI(asg[lhs]), s.Graph.Dicts.VertexIRI(asg[rhs]))
				})
			case sparql.FilterStrStarts:
				out = append(out, func(asg []dict.VertexID) bool {
					return strings.HasPrefix(s.Graph.Dicts.VertexIRI(asg[lhs]), s.Graph.Dicts.VertexIRI(asg[rhs]))
				})
			}
			continue
		}
		val := f.RHS.Value
		switch f.Op {
		case sparql.FilterEq:
			out = append(out, text(lhs, func(x string) bool { return x == val }))
		case sparql.FilterNe:
			out = append(out, text(lhs, func(x string) bool { return x != val }))
		case sparql.FilterRegex:
			out = append(out, text(lhs, func(x string) bool { return strings.Contains(x, val) }))
		case sparql.FilterStrStarts:
			out = append(out, text(lhs, func(x string) bool { return strings.HasPrefix(x, val) }))
		}
	}
	return out
}

package core

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Solution is one complete embedding translated back to RDF terms:
// variable name → typed term (IRI, blank node, or — for literal
// satellites — a literal with its datatype and language tag intact).
// Variables that do not occur in the matched UNION branch are absent
// from the map (SPARQL's unbound).
type Solution map[string]rdf.Term

// BindingTerm decodes one engine binding slot through the executing
// snapshot's dictionaries: an encoded attribute id becomes its typed
// literal, a vertex id its IRI or blank node.
func BindingTerm(res dict.Resolver, id dict.VertexID) rdf.Term {
	if dict.IsAttrBinding(id) {
		return res.Attr(dict.AttrBinding(id)).Literal()
	}
	return rdf.NewResource(res.VertexIRI(id))
}

// IsPlain reports whether the query uses only the paper's core fragment
// (single BGP, no DISTINCT/FILTER/OFFSET), for which the factorized Count
// path is available.
func IsPlain(pq *sparql.Query) bool {
	return !pq.Distinct && len(pq.Filters) == 0 && len(pq.UnionBranches) == 0 && pq.Offset == 0
}

// PreparedQuery is a query translated and planned once against a Store
// and ready to execute many times: every UNION branch's query multigraph
// is built, its matching plan computed (including the per-vertex candidate
// constraints of Algorithm 1) and its FILTERs compiled up front, so
// repeated executions skip translation and planning entirely.
//
// Preparation records the store epoch it planned against (without
// retaining the snapshot, so idle cached plans cannot pin a retired
// generation after compaction). Every execution revalidates: if the
// store's epoch moved (a live update or a compaction), the branches are
// transparently re-planned against the current snapshot — the common
// unchanged case costs two atomic loads. Each execution then runs
// entirely against one snapshot, so results are never torn across an
// update. A PreparedQuery is safe for concurrent use.
type PreparedQuery struct {
	store   *Store
	planner plan.Planner
	pq      *sparql.Query
	proj    []string
	plain   bool

	mu    sync.Mutex // serializes re-preparation
	state atomic.Pointer[preparedState]
}

// preparedState is the per-epoch compiled form: one prepared branch per
// UNION alternative. It records the epoch it was planned against but
// deliberately does NOT hold the Snapshot — an idle cached plan must not
// pin a retired generation's graph and index ensemble in memory after a
// compaction. Epochs are in bijection with snapshots, so resolve() can
// always re-fetch the matching snapshot while it is current.
type preparedState struct {
	epoch    uint64
	branches []preparedBranch
}

// preparedBranch is one UNION branch: its cached matching plan plus the
// filters resolved against that branch's variables.
type preparedBranch struct {
	pl      *plan.Plan
	filters []compiledFilter
}

// PrepareQuery translates a parsed query into its executable form using
// the default planner.
func (s *Store) PrepareQuery(pq *sparql.Query) (*PreparedQuery, error) {
	return s.PrepareQueryWith(plan.Default(), pq)
}

// PrepareQueryWith translates and plans with an explicit planner.
func (s *Store) PrepareQueryWith(pl plan.Planner, pq *sparql.Query) (*PreparedQuery, error) {
	p := &PreparedQuery{
		store:   s,
		planner: pl,
		pq:      pq,
		proj:    pq.Projection(),
		plain:   IsPlain(pq),
	}
	// Prepare eagerly so structural errors surface here, not at first use.
	if _, _, err := p.resolve(); err != nil {
		return nil, err
	}
	return p, nil
}

// resolve returns the snapshot to execute against plus the compiled
// state matching its epoch, re-planning if a mutation or compaction
// moved the store. The returned snapshot is pinned by the caller for
// the duration of one execution only.
func (p *PreparedQuery) resolve() (*Snapshot, *preparedState, error) {
	cur := p.store.Snapshot()
	if st := p.state.Load(); st != nil && st.epoch == cur.Epoch {
		return cur, st, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cur = p.store.Snapshot() // re-read: another goroutine may have won
	if st := p.state.Load(); st != nil && st.epoch == cur.Epoch {
		return cur, st, nil
	}
	st := &preparedState{epoch: cur.Epoch}
	for _, branch := range p.pq.Branches() {
		bq := &sparql.Query{Prefixes: p.pq.Prefixes, Star: true, Patterns: branch}
		qg, err := query.Build(bq, cur.Resolver())
		if err != nil {
			return nil, nil, err
		}
		st.branches = append(st.branches, preparedBranch{
			pl:      p.planner.Plan(qg, cur.Reader()),
			filters: compileFilters(p.pq.Filters, qg),
		})
	}
	p.state.Store(st)
	return cur, st, nil
}

// Query returns the parsed query the PreparedQuery was built from.
func (p *PreparedQuery) Query() *sparql.Query { return p.pq }

// Projection returns the projected variable names.
func (p *PreparedQuery) Projection() []string { return p.proj }

// Plain reports whether the query is in the paper's core fragment (see
// IsPlain), for which the factorized Count path applies.
func (p *PreparedQuery) Plain() bool { return p.plain }

// Plan returns the current matching plan of a plain (single-branch)
// query, for diagnostics; nil otherwise. Live updates may re-plan, so
// successive calls can return different plans.
func (p *PreparedQuery) Plan() *plan.Plan {
	if !p.plain {
		return nil
	}
	_, st, err := p.resolve()
	if err != nil || len(st.branches) != 1 {
		return nil
	}
	return st.branches[0].pl
}

// Plans returns every branch's current plan (diagnostics; Explain).
func (p *PreparedQuery) Plans() []*plan.Plan {
	_, st, err := p.resolve()
	if err != nil {
		return nil
	}
	out := make([]*plan.Plan, len(st.branches))
	for i := range st.branches {
		out[i] = st.branches[i].pl
	}
	return out
}

// CountPlan counts embeddings of a plain query through the factorized
// engine path, pinned to one snapshot. Callers must have checked Plain.
func (p *PreparedQuery) CountPlan(opts engine.Options) (uint64, error) {
	sn, st, err := p.resolve()
	if err != nil {
		return 0, err
	}
	if opts.Meter == nil {
		opts.Meter = obs.TraceFromContext(opts.Ctx).Meter()
	}
	return engine.Count(sn.Reader(), st.branches[0].pl, opts)
}

// Count counts solutions against one pinned snapshot: the factorized
// engine path for plain queries, row enumeration otherwise.
func (p *PreparedQuery) Count(opts engine.Options) (uint64, error) {
	if p.plain {
		return p.CountPlan(opts)
	}
	var n uint64
	err := p.Execute(opts, func(Solution) bool { n++; return true })
	return n, err
}

// Ask reports whether the query has at least one solution, stopping the
// search at the first one. It always takes the enumeration path: for a
// plain query Execute pushes the limit of one into the engine, whose
// Stream mode aborts after the first embedding — the factorized Count
// would tally every core match before applying its cap.
func (p *PreparedQuery) Ask(opts engine.Options) (bool, error) {
	opts.Limit = 1
	found := false
	err := p.Execute(opts, func(Solution) bool {
		found = true
		return false
	})
	return found, err
}

// CountPlanParallel is CountPlan with a worker pool.
func (p *PreparedQuery) CountPlanParallel(opts engine.Options, workers int) (uint64, error) {
	sn, st, err := p.resolve()
	if err != nil {
		return 0, err
	}
	if opts.Meter == nil {
		opts.Meter = obs.TraceFromContext(opts.Ctx).Meter()
	}
	return engine.CountParallel(sn.Reader(), st.branches[0].pl, opts, workers)
}

// Execute evaluates a parsed query with the full extension fragment:
// UNION branches, FILTER constraints, DISTINCT, OFFSET and LIMIT. yield
// receives complete solutions (all variables of the matched branch);
// returning false stops evaluation.
//
// Row-level modifiers are applied in SPARQL order: filters per solution,
// then projection-level DISTINCT, then OFFSET, then LIMIT.
func (s *Store) Execute(pq *sparql.Query, opts engine.Options, yield func(Solution) bool) error {
	p, err := s.PrepareQuery(pq)
	if err != nil {
		return err
	}
	return p.Execute(opts, yield)
}

// Execute runs the prepared query against one pinned snapshot; see
// Store.Execute for semantics. When opts.Ctx carries an obs.Trace, the
// engine's effort counters and per-level candidate frontiers are
// recorded into it (per branch), alongside any opts.Stats the caller
// passed.
func (p *PreparedQuery) Execute(opts engine.Options, yield func(Solution) bool) error {
	sn, st, err := p.resolve()
	if err != nil {
		return err
	}
	tr := obs.TraceFromContext(opts.Ctx)
	if tr != nil && len(st.branches) > 0 {
		tr.SetPlan(st.branches[0].pl.Planner, p.Shape(), planSummary(st.branches), sn.Epoch)
	}
	if opts.Meter == nil {
		opts.Meter = tr.Meter()
	}
	pq := p.pq
	limit := pq.Limit
	if opts.Limit > 0 && (limit == 0 || opts.Limit < limit) {
		limit = opts.Limit
	}

	// Only a plain query may push the limit into the engine.
	engOpts := opts
	engOpts.Limit = 0
	if p.plain {
		engOpts.Limit = limit
	}

	var (
		seen    map[string]bool
		skipped int
		emitted int
		stop    bool
	)
	if pq.Distinct {
		seen = make(map[string]bool)
	}

	emit := func(sol Solution) bool {
		if pq.Distinct {
			key := distinctKey(p.proj, sol)
			if seen[key] {
				return true
			}
			seen[key] = true
		}
		if skipped < pq.Offset {
			skipped++
			return true
		}
		if !yield(sol) {
			stop = true
			return false
		}
		emitted++
		if limit > 0 && emitted >= limit {
			stop = true
			return false
		}
		return true
	}

	res := sn.Resolver()
	for bi := range st.branches {
		if stop {
			break
		}
		branch := &st.branches[bi]
		filters := branch.filters
		qg := branch.pl.Query
		// A traced run uses per-branch engine stats (branches execute
		// different plans, so their level records must not interleave),
		// merged into the trace — and the caller's Stats — afterwards.
		engBranch := engOpts
		var bstats engine.Stats
		if tr != nil {
			engBranch.Stats = &bstats
		}
		err := engine.Stream(sn.Reader(), branch.pl, engBranch, func(asg []dict.VertexID) bool {
			for _, f := range filters {
				if !f(asg, res) {
					return true
				}
			}
			sol := make(Solution, len(qg.Vars))
			for u := range qg.Vars {
				sol[qg.Vars[u].Name] = BindingTerm(res, asg[u])
			}
			return emit(sol)
		})
		if tr != nil {
			traceBranch(tr, bi, branch.pl, &bstats)
			if opts.Stats != nil {
				opts.Stats.InitCandidates += bstats.InitCandidates
				opts.Stats.Recursions += bstats.Recursions
				opts.Stats.SatProbes += bstats.SatProbes
				opts.Stats.Embeddings += bstats.Embeddings
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// distinctKey builds a deduplication key over the projected variables.
// The N-Triples rendering is injective over terms (kind, datatype and
// language tag are all part of it), and an unbound variable renders as
// the empty string, which no term renders as.
func distinctKey(proj []string, sol Solution) string {
	parts := make([]string, len(proj))
	for i, v := range proj {
		if t, ok := sol[v]; ok {
			parts[i] = t.String()
		}
	}
	return strings.Join(parts, "\x00")
}

// compiledFilter checks one FILTER against an embedding, resolving
// bound vertices through the executing snapshot's dictionaries (passed
// per call so the compiled form retains no snapshot reference).
type compiledFilter func(asg []dict.VertexID, res dict.Resolver) bool

// bindingText is the FILTER view of a binding: the IRI (or blank label)
// for resources, the lexical form for literals.
func bindingText(res dict.Resolver, id dict.VertexID) string {
	if dict.IsAttrBinding(id) {
		return res.Attr(dict.AttrBinding(id)).Lexical
	}
	return res.VertexIRI(id)
}

// sameBinding is sameTerm over two engine bindings. Equal ids are always
// the same term, but the converse stopped holding with literal
// satellites: attributes are interned per <predicate, literal>, so the
// same literal reached through two predicates carries two distinct ids
// and must be compared as a term.
func sameBinding(res dict.Resolver, a, b dict.VertexID) bool {
	if a == b {
		return true
	}
	if !dict.IsAttrBinding(a) || !dict.IsAttrBinding(b) {
		return false // distinct vertices, or a literal vs a resource
	}
	ta, tb := res.Attr(dict.AttrBinding(a)), res.Attr(dict.AttrBinding(b))
	return ta.Lexical == tb.Lexical && ta.Datatype == tb.Datatype && ta.Lang == tb.Lang
}

// compileFilters resolves filter variables against the branch's query
// graph. A filter whose variable is absent from this branch is vacuously
// true for the branch (the variable is unbound there).
func compileFilters(fs []sparql.Filter, qg *query.Graph) []compiledFilter {
	text := func(u query.VertexID, pred func(string) bool) compiledFilter {
		return func(asg []dict.VertexID, res dict.Resolver) bool {
			return pred(bindingText(res, asg[u]))
		}
	}
	// termEq is sameTerm equality against a constant: the texts must
	// match and, when either side carries a datatype or language tag,
	// the annotations must match too (an IRI constant or a plain-literal
	// constant still compares textually against IRI bindings, preserving
	// the pre-typed-term behaviour).
	termEq := func(u query.VertexID, rhs sparql.Term) compiledFilter {
		want := rhs.RDF()
		return func(asg []dict.VertexID, res dict.Resolver) bool {
			id := asg[u]
			if dict.IsAttrBinding(id) {
				a := res.Attr(dict.AttrBinding(id))
				return a.Lexical == want.Value && a.Datatype == want.Datatype && a.Lang == want.Lang
			}
			return want.Datatype == "" && want.Lang == "" && res.VertexIRI(id) == want.Value
		}
	}
	var out []compiledFilter
	for _, f := range fs {
		lhs, ok := qg.VarIndex[f.LHS]
		if !ok {
			continue
		}
		if f.RHS.Kind == sparql.Var {
			rhs, ok := qg.VarIndex[f.RHS.Value]
			if !ok {
				continue
			}
			switch f.Op {
			case sparql.FilterEq:
				out = append(out, func(asg []dict.VertexID, res dict.Resolver) bool { return sameBinding(res, asg[lhs], asg[rhs]) })
			case sparql.FilterNe:
				out = append(out, func(asg []dict.VertexID, res dict.Resolver) bool { return !sameBinding(res, asg[lhs], asg[rhs]) })
			case sparql.FilterRegex:
				out = append(out, func(asg []dict.VertexID, res dict.Resolver) bool {
					return strings.Contains(bindingText(res, asg[lhs]), bindingText(res, asg[rhs]))
				})
			case sparql.FilterStrStarts:
				out = append(out, func(asg []dict.VertexID, res dict.Resolver) bool {
					return strings.HasPrefix(bindingText(res, asg[lhs]), bindingText(res, asg[rhs]))
				})
			}
			continue
		}
		val := f.RHS.Value
		switch f.Op {
		case sparql.FilterEq:
			out = append(out, termEq(lhs, f.RHS))
		case sparql.FilterNe:
			eq := termEq(lhs, f.RHS)
			out = append(out, func(asg []dict.VertexID, res dict.Resolver) bool { return !eq(asg, res) })
		case sparql.FilterRegex:
			out = append(out, text(lhs, func(x string) bool { return strings.Contains(x, val) }))
		case sparql.FilterStrStarts:
			out = append(out, text(lhs, func(x string) bool { return strings.HasPrefix(x, val) }))
		}
	}
	return out
}

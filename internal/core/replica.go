package core

import (
	"fmt"
	"io"

	"repro/internal/delta"
	"repro/internal/rdf"
	"repro/internal/wal"
)

// The replica apply path. Startup replay (AttachWAL) and replication
// catch-up (a follower pulling the primary's WAL over the network) are
// the same problem — apply an ordered sequence of already-logged records
// to the store without re-logging them — so they share storeConsumer and
// applyRecordLocked. Whatever the crash-point sweep proves about replay
// therefore holds for network catch-up too.

// storeConsumer feeds WAL records into a Store through the unlogged
// apply path. It is the wal.Consumer both for replay on open and for a
// follower's stream applier.
type storeConsumer struct{ s *Store }

// Consume validates and applies one record.
func (c storeConsumer) Consume(r wal.Record) error {
	if err := validateRecord(r); err != nil {
		return err
	}
	l := &c.s.live
	l.mu.Lock()
	err := c.s.applyRecordLocked(r)
	done := l.claimCompactionLocked()
	l.mu.Unlock()
	if done != nil {
		go c.s.runClaimedCompaction(done)
	}
	return err
}

// validateRecord mirrors Mutate's up-front validation: applyRecordLocked
// relies on Apply being infallible for validated input.
func validateRecord(r wal.Record) error {
	switch r.Kind {
	case wal.KindMutation:
		for _, t := range r.Dels {
			if err := delta.Validate(t); err != nil {
				return err
			}
		}
		for _, t := range r.Adds {
			if err := delta.Validate(t); err != nil {
				return err
			}
		}
		return nil
	case wal.KindClear:
		return nil
	default:
		return fmt.Errorf("core: unknown WAL record kind %v", r.Kind)
	}
}

// applyRecordLocked applies one validated, already-logged record to the
// live snapshot chain: the overlay advances, the epoch ticks once, and
// nothing is written to the local log. Caller holds l.mu.
func (s *Store) applyRecordLocked(r wal.Record) error {
	l := &s.live
	switch r.Kind {
	case wal.KindMutation:
		cur := l.snap.Load()
		nv, err := cur.Delta.Apply(r.Adds, r.Dels)
		if err != nil {
			return err // unreachable for validated records
		}
		if l.compacting {
			// Same catch-up discipline as commitGroup: an in-flight rebuild
			// must see writes that land while it runs.
			l.log = append(l.log, mutation{
				adds: append([]rdf.Triple(nil), r.Adds...),
				dels: append([]rdf.Triple(nil), r.Dels...),
			})
		}
		l.snap.Store(&Snapshot{
			Graph: cur.Graph, Index: cur.Index, Delta: nv,
			Epoch: cur.Epoch + 1, Gen: cur.Gen, Build: cur.Build,
		})
		l.updates.Add(1)
		return nil
	case wal.KindClear:
		return s.clearLocked(false)
	default:
		return fmt.Errorf("core: unknown WAL record kind %v", r.Kind)
	}
}

// claimCompactionLocked applies commitGroup's compaction trigger: if the
// overlay has outgrown the threshold and no compaction is running, it
// claims the compaction slot and returns the cycle's done channel (nil
// otherwise). The caller must release l.mu and then run
// runClaimedCompaction(done) in a goroutine. Caller holds l.mu.
func (l *liveState) claimCompactionLocked() chan struct{} {
	th := l.compactThreshold.Load()
	if th <= 0 || l.compacting {
		return nil
	}
	nv := l.snap.Load().Delta
	if int64(nv.Size()) < th && int64(nv.Versions()) < versionsPerEntry*th {
		return nil
	}
	l.compacting = true
	done := make(chan struct{})
	l.compactDone = done
	return done
}

// runClaimedCompaction runs a compaction cycle claimed with
// claimCompactionLocked, including the post-compaction auto checkpoint.
func (s *Store) runClaimedCompaction(done chan struct{}) {
	l := &s.live
	defer func() {
		close(done)
		l.mu.Lock()
		if l.compactDone == done {
			l.compactDone = nil
		}
		l.mu.Unlock()
	}()
	if s.runCompaction() == nil { // error unreachable for validated batches
		s.maybeAutoCheckpoint()
	}
}

// ApplyReplicated appends records that already carry the primary's
// sequence numbers to the local log and applies them to the store, as
// one atomic step with respect to Checkpoint's (snapshot, lastSeq)
// capture. This is the follower's write path: after it returns, the
// local WAL and the live snapshot agree through the batch's last record,
// so a crash recovers to exactly this point and the stream resumes at
// LastSeq+1.
//
// The store's own epoch still advances once per record — local caches
// key on it — while the primary-comparable epoch travels inside each
// record (Record.Epoch) for the replication layer to track.
func (s *Store) ApplyReplicated(recs []wal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	for _, r := range recs {
		if err := validateRecord(r); err != nil {
			return err
		}
	}
	l := &s.live
	l.mu.Lock()
	if d := s.dur.Load(); d != nil {
		if _, err := d.log.AppendExternal(recs); err != nil {
			l.mu.Unlock()
			return fmt.Errorf("%w: %w", ErrDurability, err)
		}
	}
	var err error
	for i := range recs {
		if err = s.applyRecordLocked(recs[i]); err != nil {
			break // unreachable for validated records
		}
	}
	done := l.claimCompactionLocked()
	l.mu.Unlock()
	if done != nil {
		go s.runClaimedCompaction(done)
	}
	return err
}

// SaveReplica streams the store's merged state to w and returns the WAL
// sequence number and store epoch the snapshot covers, captured
// atomically with the state exactly as Checkpoint does. The replication
// primary serves follower bootstraps and resyncs with it; a follower
// that loads the snapshot and resumes the stream at seq+1 reproduces the
// primary exactly.
func (s *Store) SaveReplica(w io.Writer) (seq, epoch uint64, err error) {
	d := s.dur.Load()
	if d == nil {
		return 0, 0, ErrNotDurable
	}
	l := &s.live
	l.mu.Lock()
	sn := l.snap.Load()
	seq = d.log.LastSeq()
	l.mu.Unlock()
	if err := writeSnapshot(w, sn); err != nil {
		return 0, 0, err
	}
	return seq, sn.Epoch, nil
}

// WAL exposes the attached log (nil without one). The replication
// primary reads segments, subscribes to appends, and installs its
// retention hook through it.
func (s *Store) WAL() *wal.Log {
	if d := s.dur.Load(); d != nil {
		return d.log
	}
	return nil
}

package triplestore

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

const figure1 = `
@prefix x: <http://dbpedia.org/resource/> .
@prefix y: <http://dbpedia.org/ontology/> .
x:London y:isPartOf x:England .
x:England y:hasCapital x:London .
x:Christopher_Nolan y:wasBornIn x:London .
x:Christopher_Nolan y:livedIn x:England .
x:Christopher_Nolan y:isPartOf x:Dark_Knight_Trilogy .
x:London y:hasStadium x:WembleyStadium .
x:WembleyStadium y:hasCapacityOf "90000" .
x:Amy_Winehouse y:wasBornIn x:London .
x:Amy_Winehouse y:diedIn x:London .
x:Amy_Winehouse y:wasPartOf x:Music_Band .
x:Music_Band y:hasName "MCA_Band" .
x:Music_Band y:foundedIn "1994" .
x:Music_Band y:wasFormedIn x:London .
x:Amy_Winehouse y:livedIn x:United_States .
x:Amy_Winehouse y:wasMarriedTo x:Blake_Fielder-Civil .
x:Blake_Fielder-Civil y:livedIn x:United_States .
`

func loadStore(t *testing.T) *Store {
	t.Helper()
	ts, err := rdf.ParseString(figure1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func run(t *testing.T, st *Store, src string, opts Options) (uint64, error) {
	t.Helper()
	pq, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return st.Count(st.Compile(pq), opts)
}

func TestBasicCounts(t *testing.T) {
	st := loadStore(t)
	if st.NumTriples() != 16 {
		t.Errorf("NumTriples = %d, want 16", st.NumTriples())
	}
	tests := []struct {
		name, q string
		want    uint64
	}{
		{"all livedIn", `PREFIX y: <http://dbpedia.org/ontology/> SELECT * WHERE { ?a y:livedIn ?b }`, 3},
		{"born+died", `PREFIX y: <http://dbpedia.org/ontology/> SELECT * WHERE { ?w y:wasBornIn ?c . ?w y:diedIn ?c }`, 1},
		{"anchored", `PREFIX y: <http://dbpedia.org/ontology/> PREFIX x: <http://dbpedia.org/resource/> SELECT * WHERE { ?w y:livedIn x:United_States }`, 2},
		{"literal object", `PREFIX y: <http://dbpedia.org/ontology/> SELECT * WHERE { ?s y:hasName "MCA_Band" }`, 1},
		{"ground true", `PREFIX y: <http://dbpedia.org/ontology/> PREFIX x: <http://dbpedia.org/resource/> SELECT * WHERE { x:London y:isPartOf x:England }`, 1},
		{"ground false", `PREFIX y: <http://dbpedia.org/ontology/> PREFIX x: <http://dbpedia.org/resource/> SELECT * WHERE { x:England y:isPartOf x:London }`, 0},
		{"path join", `PREFIX y: <http://dbpedia.org/ontology/> SELECT * WHERE { ?a y:wasPartOf ?b . ?b y:wasFormedIn ?c }`, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := run(t, st, tc.q, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("count = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestVariablesNeverBindLiterals(t *testing.T) {
	st := loadStore(t)
	// ?s hasName ?o — the only hasName triple has a literal object, which a
	// variable must not bind under the multigraph semantics.
	got, err := run(t, st, `PREFIX y: <http://dbpedia.org/ontology/> SELECT * WHERE { ?s y:hasName ?o }`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("count = %d, want 0 (variables bind IRIs only)", got)
	}
}

func TestDuplicatesCollapse(t *testing.T) {
	ts, _ := rdf.ParseString(`<http://x/a> <http://y/p> <http://x/b> .
<http://x/a> <http://y/p> <http://x/b> .
`)
	st, err := FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumTriples() != 1 {
		t.Errorf("NumTriples = %d, want 1", st.NumTriples())
	}
}

func TestSelfJoinSameVariable(t *testing.T) {
	ts, _ := rdf.ParseString(`<http://x/a> <http://y/p> <http://x/a> .
<http://x/a> <http://y/p> <http://x/b> .
`)
	st, err := FromTriples(ts)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := sparql.Parse(`SELECT ?v WHERE { ?v <http://y/p> ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Count(st.Compile(pq), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("self-loop count = %d, want 1", got)
	}
}

func TestUnsatCompile(t *testing.T) {
	st := loadStore(t)
	pq, _ := sparql.Parse(`PREFIX y: <http://dbpedia.org/ontology/> SELECT ?a ?b WHERE { ?a y:noSuchPredicate ?b }`)
	c := st.Compile(pq)
	if !c.Unsat() {
		t.Error("unknown predicate not marked unsat")
	}
	if n, err := st.Count(c, Options{}); err != nil || n != 0 {
		t.Errorf("Count = %d, %v", n, err)
	}
}

func TestLimitAndAbort(t *testing.T) {
	st := loadStore(t)
	pq, _ := sparql.Parse(`PREFIX y: <http://dbpedia.org/ontology/> SELECT * WHERE { ?a y:livedIn ?b }`)
	c := st.Compile(pq)
	var got int
	if err := st.Stream(c, Options{Limit: 2}, func([]uint32) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("limited stream = %d, want 2", got)
	}
	got = 0
	if err := st.Stream(c, Options{}, func([]uint32) bool { got++; return false }); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("aborted stream = %d, want 1", got)
	}
}

func TestDeadline(t *testing.T) {
	st := loadStore(t)
	pq, _ := sparql.Parse(`PREFIX y: <http://dbpedia.org/ontology/> SELECT * WHERE { ?a y:livedIn ?b }`)
	c := st.Compile(pq)
	_, err := st.Count(c, Options{Deadline: time.Now().Add(-time.Second)})
	if err != ErrDeadlineExceeded {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
}

func TestVarNamesAndResourceName(t *testing.T) {
	st := loadStore(t)
	pq, _ := sparql.Parse(`PREFIX y: <http://dbpedia.org/ontology/> SELECT * WHERE { ?a y:wasMarriedTo ?b }`)
	c := st.Compile(pq)
	if names := c.VarNames(); len(names) != 2 || names[0] != "a" {
		t.Errorf("VarNames = %v", names)
	}
	var sawAmy bool
	err := st.Stream(c, Options{}, func(asg []uint32) bool {
		if st.ResourceName(asg[0]) == "http://dbpedia.org/resource/Amy_Winehouse" {
			sawAmy = true
		}
		return true
	})
	if err != nil || !sawAmy {
		t.Errorf("expected Amy binding, err=%v", err)
	}
}

// TestScanAllPatternShapes exercises all eight bound/unbound combinations
// against a brute-force filter.
func TestScanAllPatternShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var b Builder
	var all []enc
	for i := 0; i < 400; i++ {
		tr := rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(12))),
			P: rdf.NewIRI(fmt.Sprintf("http://y/p%d", rng.Intn(5))),
			O: rdf.NewIRI(fmt.Sprintf("http://x/o%d", rng.Intn(12))),
		}
		if err := b.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Build()
	all = append(all, st.triples...)

	for trial := 0; trial < 200; trial++ {
		var sb, pb, ob int64 = -1, -1, -1
		pick := all[rng.Intn(len(all))]
		if rng.Intn(2) == 0 {
			sb = int64(pick.S)
		}
		if rng.Intn(2) == 0 {
			pb = int64(pick.P)
		}
		if rng.Intn(2) == 0 {
			ob = int64(pick.O)
		}
		want := 0
		for _, tr := range all {
			if (sb < 0 || int64(tr.S) == sb) && (pb < 0 || int64(tr.P) == pb) && (ob < 0 || int64(tr.O) == ob) {
				want++
			}
		}
		got := 0
		st.scan(sb, pb, ob, func(enc) bool { got++; return true })
		if got != want {
			t.Fatalf("scan(%d,%d,%d) = %d, want %d", sb, pb, ob, got, want)
		}
		if est := st.estimate(sb, pb, ob); est < want {
			t.Fatalf("estimate(%d,%d,%d) = %d < true count %d", sb, pb, ob, est, want)
		}
	}
}

func TestBuilderRejectsBadTriples(t *testing.T) {
	var b Builder
	lit := rdf.NewLiteral("x")
	iri := rdf.NewIRI("http://x/a")
	if err := b.Add(rdf.Triple{S: lit, P: iri, O: iri}); err == nil {
		t.Error("literal subject accepted")
	}
	if err := b.AddAll([]rdf.Triple{{S: iri, P: lit, O: iri}}); err == nil {
		t.Error("literal predicate accepted")
	}
}

func TestFromReader(t *testing.T) {
	st, err := FromReader(strings.NewReader(figure1))
	if err != nil {
		t.Fatal(err)
	}
	if st.NumTriples() != 16 {
		t.Errorf("NumTriples = %d, want 16", st.NumTriples())
	}
	if _, err := FromReader(strings.NewReader("garbage\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := FromReader(strings.NewReader(`"lit" <http://y/p> <http://x/o> .` + "\n")); err == nil {
		t.Error("literal subject accepted")
	}
}

func TestMidRunDeadlineTriplestore(t *testing.T) {
	// A dense graph whose 3-pattern query has |E|³ solutions; a short
	// deadline must interrupt the join mid-run.
	var b Builder
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			_ = b.Add(rdf.Triple{
				S: rdf.NewIRI(fmt.Sprintf("http://x/l%d", i)),
				P: rdf.NewIRI("http://y/p"),
				O: rdf.NewIRI(fmt.Sprintf("http://x/r%d", j)),
			})
		}
	}
	st := b.Build()
	pq, _ := sparql.Parse(`SELECT * WHERE { ?a <http://y/p> ?b . ?c <http://y/p> ?d . ?e <http://y/p> ?f }`)
	c := st.Compile(pq)
	start := time.Now()
	_, err := st.Count(c, Options{Deadline: time.Now().Add(5 * time.Millisecond)})
	if err != ErrDeadlineExceeded {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("deadline far overshot")
	}
}

package triplestore

import (
	"errors"
	"math"
	"time"

	"repro/internal/sparql"
)

// ErrDeadlineExceeded is returned when the evaluation deadline passes.
var ErrDeadlineExceeded = errors.New("triplestore: deadline exceeded")

// Options control query evaluation.
type Options struct {
	// Limit caps the number of solutions (0 = all).
	Limit int
	// Deadline aborts evaluation when passed (zero = none).
	Deadline time.Time
}

// epattern is a dictionary-encoded triple pattern. Negative components are
// variables, identified by varIDs below.
type epattern struct {
	s, p, o int64 // ≥ 0: constant id; < 0: variable reference (see vref)
}

// vref packs variable ids into negative int64s.
func vref(v int) int64   { return -int64(v) - 1 }
func isVar(x int64) bool { return x < 0 }
func varOf(x int64) int  { return int(-x - 1) }

// compiled is a query compiled against the store's dictionaries.
type compiled struct {
	patterns []epattern
	order    []int // evaluation order
	varNames []string
	unsat    bool
}

// Compile translates a parsed SPARQL query. Constants missing from the
// dictionaries mark the query unsatisfiable.
func (s *Store) Compile(q *sparql.Query) *compiled {
	c := &compiled{}
	varID := map[string]int{}
	getVar := func(name string) int {
		if id, ok := varID[name]; ok {
			return id
		}
		id := len(c.varNames)
		varID[name] = id
		c.varNames = append(c.varNames, name)
		return id
	}
	for _, p := range q.Patterns {
		var ep epattern
		switch p.S.Kind {
		case sparql.Var:
			ep.s = vref(getVar(p.S.Value))
		default:
			id, ok := s.res.Lookup(p.S.Value)
			if !ok {
				c.unsat = true
			}
			ep.s = int64(id)
		}
		pid, ok := s.preds.Lookup(p.P.Value)
		if !ok {
			c.unsat = true
		}
		ep.p = int64(pid)
		switch p.O.Kind {
		case sparql.Var:
			ep.o = vref(getVar(p.O.Value))
		case sparql.Literal:
			id, ok := s.lits.Lookup(p.O.Value)
			if !ok {
				c.unsat = true
			}
			ep.o = int64(litOID(id))
		default:
			id, ok := s.res.Lookup(p.O.Value)
			if !ok {
				c.unsat = true
			}
			ep.o = int64(resOID(id))
		}
		c.patterns = append(c.patterns, ep)
	}
	if !c.unsat {
		c.order = s.orderPatterns(c)
	}
	return c
}

// orderPatterns performs the static selectivity-based join ordering:
// repeatedly pick the cheapest pattern (by index-range estimate, with bound
// variables treated as constants pessimistically as unbound), preferring
// patterns connected to already-chosen ones — the standard exploitation of
// query structure for join ordering.
func (s *Store) orderPatterns(c *compiled) []int {
	n := len(c.patterns)
	chosen := make([]bool, n)
	bound := map[int]bool{}
	var order []int
	est := func(i int) int {
		p := c.patterns[i]
		sb, pb, ob := int64(-1), int64(-1), int64(-1)
		if !isVar(p.s) {
			sb = p.s
		}
		if !isVar(p.p) {
			pb = p.p
		}
		if !isVar(p.o) {
			ob = p.o
		}
		// A bound variable narrows the range like a constant; estimate with
		// selectivity bonus rather than a concrete value.
		e := s.estimate(sb, pb, ob)
		if isVar(p.s) && bound[varOf(p.s)] {
			e = e/8 + 1
		}
		if isVar(p.o) && bound[varOf(p.o)] {
			e = e/8 + 1
		}
		return e
	}
	connected := func(i int) bool {
		p := c.patterns[i]
		return (isVar(p.s) && bound[varOf(p.s)]) || (isVar(p.o) && bound[varOf(p.o)])
	}
	for len(order) < n {
		best, bestCost := -1, math.MaxInt
		bestConn := false
		for i := 0; i < n; i++ {
			if chosen[i] {
				continue
			}
			conn := connected(i) || len(order) == 0
			cost := est(i)
			// Prefer connected patterns; among equals, the cheapest.
			if best < 0 || (conn && !bestConn) || (conn == bestConn && cost < bestCost) {
				best, bestCost, bestConn = i, cost, conn
			}
		}
		order = append(order, best)
		chosen[best] = true
		p := c.patterns[best]
		if isVar(p.s) {
			bound[varOf(p.s)] = true
		}
		if isVar(p.o) {
			bound[varOf(p.o)] = true
		}
	}
	return order
}

// Count evaluates the compiled query, returning the number of solutions
// (assignments to all variables, IRIs only).
func (s *Store) Count(c *compiled, opts Options) (uint64, error) {
	var n uint64
	err := s.Stream(c, opts, func([]uint32) bool {
		n++
		return true
	})
	return n, err
}

// Stream enumerates solutions, invoking yield with the variable assignment
// (resource ids indexed by variable id; the slice is reused). Enumeration
// stops when yield returns false.
func (s *Store) Stream(c *compiled, opts Options, yield func([]uint32) bool) error {
	if c.unsat {
		return nil
	}
	if !opts.Deadline.IsZero() && time.Now().After(opts.Deadline) {
		return ErrDeadlineExceeded
	}
	e := &evaluator{
		s: s, c: c,
		asg:      make([]uint32, len(c.varNames)),
		isSet:    make([]bool, len(c.varNames)),
		yield:    yield,
		limit:    opts.Limit,
		deadline: opts.Deadline,
	}
	e.run(0)
	if e.expired {
		return ErrDeadlineExceeded
	}
	return nil
}

type evaluator struct {
	s     *Store
	c     *compiled
	asg   []uint32
	isSet []bool

	yield    func([]uint32) bool
	limit    int
	deadline time.Time

	steps   int
	emitted int
	stopped bool
	expired bool
}

func (e *evaluator) checkDeadline() bool {
	if e.expired {
		return true
	}
	e.steps++
	if e.deadline.IsZero() || e.steps&255 != 0 {
		return false
	}
	if time.Now().After(e.deadline) {
		e.expired = true
	}
	return e.expired
}

// run evaluates pattern e.c.order[k] under the current bindings.
func (e *evaluator) run(k int) {
	if e.stopped || e.expired {
		return
	}
	if k == len(e.c.order) {
		e.emitted++
		if e.yield != nil && !e.yield(e.asg) {
			e.stopped = true
		}
		if e.limit > 0 && e.emitted >= e.limit {
			e.stopped = true
		}
		return
	}
	p := e.c.patterns[e.c.order[k]]
	sb, pb, ob := int64(-1), p.p, int64(-1)
	sVar, oVar := -1, -1
	if isVar(p.s) {
		if v := varOf(p.s); e.isSet[v] {
			sb = int64(e.asg[v])
		} else {
			sVar = v
		}
	} else {
		sb = p.s
	}
	if isVar(p.o) {
		if v := varOf(p.o); e.isSet[v] {
			ob = int64(resOID(e.asg[v]))
		} else {
			oVar = v
		}
	} else {
		ob = p.o
	}
	e.s.scan(sb, pb, ob, func(t enc) bool {
		if e.checkDeadline() {
			return false
		}
		// Variables bind IRIs only (AMbER's multigraph semantics).
		if oVar >= 0 && t.O.isLit() {
			return true
		}
		// Same-variable subject and object must coincide.
		if sVar >= 0 && sVar == oVar && oid(t.S) != oid(t.O.id()) {
			return true
		}
		if sVar >= 0 {
			e.asg[sVar], e.isSet[sVar] = t.S, true
		}
		if oVar >= 0 {
			e.asg[oVar], e.isSet[oVar] = t.O.id(), true
		}
		e.run(k + 1)
		if sVar >= 0 {
			e.isSet[sVar] = false
		}
		if oVar >= 0 {
			e.isSet[oVar] = false
		}
		return !e.stopped && !e.expired
	})
}

// ResourceName resolves a resource id back to its IRI.
func (s *Store) ResourceName(id uint32) string { return s.res.Value(id) }

// VarNames exposes the compiled query's variable order.
func (c *compiled) VarNames() []string { return c.varNames }

// Unsat reports whether compilation found a constant absent from the data.
func (c *compiled) Unsat() bool { return c.unsat }

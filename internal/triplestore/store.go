// Package triplestore implements the relational-style baseline the paper
// compares against (the x-RDF-3X / Virtuoso architecture class): RDF
// triples in one big dictionary-encoded table, exhaustively indexed with
// all six component permutations (SPO, SOP, PSO, POS, OSP, OPS), and
// SPARQL evaluation by selectivity-ordered index-nested-loop joins.
//
// The semantics match AMbER's multigraph homomorphism: variables bind only
// IRIs (never literals), so result counts are directly comparable across
// engines. Duplicate input triples are collapsed.
package triplestore

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// oid encodes an object: IRIs carry the resource id, literals the literal
// id with the litFlag bit set. The flag sits at bit 40 — well above the
// 32-bit id space yet low enough that int64(oid) stays positive, which the
// evaluator's negative-variable encoding relies on.
type oid uint64

const litFlag oid = 1 << 40

func resOID(id uint32) oid { return oid(id) }
func litOID(id uint32) oid { return oid(id) | litFlag }

// isLit reports whether the object is a literal.
func (o oid) isLit() bool { return o&litFlag != 0 }

// id returns the dictionary id.
func (o oid) id() uint32 { return uint32(o &^ litFlag) }

// enc is one dictionary-encoded triple.
type enc struct {
	S uint32
	P uint32
	O oid
}

// Store is the immutable triple store. Build one with a Builder.
type Store struct {
	res   dict.StringDict // subjects and IRI objects
	lits  dict.StringDict // literal objects
	preds dict.StringDict // predicates

	triples []enc // deduplicated
	// perms holds the six sorted permutations as index arrays into triples.
	perms [6][]int32
}

// Permutation identifiers.
const (
	permSPO = iota
	permSOP
	permPSO
	permPOS
	permOSP
	permOPS
)

// Builder accumulates triples. The zero value is ready to use.
type Builder struct {
	store   Store
	triples []enc
}

// Add ingests one RDF triple.
func (b *Builder) Add(t rdf.Triple) error {
	if !t.S.IsIRI() || !t.P.IsIRI() {
		return fmt.Errorf("triplestore: subject and predicate must be IRIs: %v", t)
	}
	s := b.store.res.Intern(t.S.Value)
	p := b.store.preds.Intern(t.P.Value)
	var o oid
	if t.O.IsLiteral() {
		o = litOID(b.store.lits.Intern(t.O.Value))
	} else {
		o = resOID(b.store.res.Intern(t.O.Value))
	}
	b.triples = append(b.triples, enc{S: s, P: p, O: o})
	return nil
}

// AddAll ingests a batch, stopping at the first error.
func (b *Builder) AddAll(ts []rdf.Triple) error {
	for _, t := range ts {
		if err := b.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// Build finalizes: deduplicates and constructs the six permutations.
func (b *Builder) Build() *Store {
	st := b.store
	// Dedup via SPO sort.
	sort.Slice(b.triples, func(i, j int) bool { return lessBy(b.triples[i], b.triples[j], permSPO) })
	st.triples = b.triples[:0]
	var prev enc
	for i, t := range b.triples {
		if i > 0 && t == prev {
			continue
		}
		st.triples = append(st.triples, t)
		prev = t
	}
	n := len(st.triples)
	for perm := 0; perm < 6; perm++ {
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		p := perm
		sort.Slice(idx, func(i, j int) bool {
			return lessBy(st.triples[idx[i]], st.triples[idx[j]], p)
		})
		st.perms[perm] = idx
	}
	return &st
}

// key returns the triple's components in permutation order.
func key(t enc, perm int) (a, b, c uint64) {
	s, p, o := uint64(t.S), uint64(t.P), uint64(t.O)
	switch perm {
	case permSPO:
		return s, p, o
	case permSOP:
		return s, o, p
	case permPSO:
		return p, s, o
	case permPOS:
		return p, o, s
	case permOSP:
		return o, s, p
	default: // permOPS
		return o, p, s
	}
}

func lessBy(x, y enc, perm int) bool {
	xa, xb, xc := key(x, perm)
	ya, yb, yc := key(y, perm)
	if xa != ya {
		return xa < ya
	}
	if xb != yb {
		return xb < yb
	}
	return xc < yc
}

// NumTriples reports the deduplicated triple count.
func (s *Store) NumTriples() int { return len(s.triples) }

// FromTriples builds a store from a slice.
func FromTriples(ts []rdf.Triple) (*Store, error) {
	var b Builder
	if err := b.AddAll(ts); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// FromReader builds a store from an N-Triples reader.
func FromReader(r io.Reader) (*Store, error) {
	var b Builder
	dec := rdf.NewDecoder(r)
	for {
		t, err := dec.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := b.Add(t); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// choosePerm picks the permutation whose key prefix covers the bound
// components (negative = unbound).
func choosePerm(sb, pb, ob int64) int {
	switch {
	case sb >= 0 && pb >= 0:
		return permSPO
	case sb >= 0 && ob >= 0:
		return permSOP
	case sb >= 0:
		return permSPO
	case pb >= 0 && ob >= 0:
		return permPOS
	case pb >= 0:
		return permPSO
	case ob >= 0:
		return permOSP
	default:
		return permSPO
	}
}

// permOrder returns the bound components in the permutation's key order.
func permOrder(perm int, sb, pb, ob int64) [3]int64 {
	switch perm {
	case permSPO:
		return [3]int64{sb, pb, ob}
	case permSOP:
		return [3]int64{sb, ob, pb}
	case permPSO:
		return [3]int64{pb, sb, ob}
	case permPOS:
		return [3]int64{pb, ob, sb}
	case permOSP:
		return [3]int64{ob, sb, pb}
	default: // permOPS
		return [3]int64{ob, pb, sb}
	}
}

func boundPrefix(vals [3]int64) []uint64 {
	var out []uint64
	for _, v := range vals {
		if v < 0 {
			break
		}
		out = append(out, uint64(v))
	}
	return out
}

// scan visits all triples matching the bound components (negative values
// mean unbound). fn returning false stops the scan.
func (s *Store) scan(sb, pb, ob int64, fn func(enc) bool) {
	perm := choosePerm(sb, pb, ob)
	prefix := boundPrefix(permOrder(perm, sb, pb, ob))
	lo, hi := s.prefixRange(perm, prefix)
	idx := s.perms[perm]
	for i := lo; i < hi; i++ {
		t := s.triples[idx[i]]
		// Residual checks for bound components beyond the prefix.
		if sb >= 0 && int64(t.S) != sb {
			continue
		}
		if pb >= 0 && int64(t.P) != pb {
			continue
		}
		if ob >= 0 && int64(t.O) != ob {
			continue
		}
		if !fn(t) {
			return
		}
	}
}

// estimate returns the number of triples matching the bound prefix, via two
// binary searches (the statistics RDF-3X-style join ordering relies on).
func (s *Store) estimate(sb, pb, ob int64) int {
	if sb < 0 && pb < 0 && ob < 0 {
		return len(s.triples)
	}
	perm := choosePerm(sb, pb, ob)
	prefix := boundPrefix(permOrder(perm, sb, pb, ob))
	lo, hi := s.prefixRange(perm, prefix)
	return hi - lo
}

// prefixRange finds [lo, hi) of permutation perm whose keys start with
// prefix.
func (s *Store) prefixRange(perm int, prefix []uint64) (int, int) {
	idx := s.perms[perm]
	cmp := func(i int, upper bool) bool {
		a, b, c := key(s.triples[idx[i]], perm)
		k := [3]uint64{a, b, c}
		for d, p := range prefix {
			if k[d] != p {
				return k[d] > p
			}
		}
		// Equal prefix: included by the lower bound, excluded by the upper.
		return !upper
	}
	lo := sort.Search(len(idx), func(i int) bool { return cmp(i, false) })
	hi := sort.Search(len(idx), func(i int) bool { return cmp(i, true) })
	return lo, hi
}

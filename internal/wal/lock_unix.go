//go:build unix

package wal

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive, non-blocking advisory lock on f. The lock
// is tied to the open file description: it fails while any other open of
// the file (same or another process) holds it, and the kernel releases it
// when the holder's descriptor closes — including on SIGKILL, so a
// crashed process never wedges the directory.
func lockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}

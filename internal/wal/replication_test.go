package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestAppendExternalPreservesSequences(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{})
	recs := []Record{mut(0), mut(1), mut(2)}
	recs[0].Seq, recs[1].Seq, recs[2].Seq = 10, 11, 20 // gaps are fine
	last, err := l.AppendExternal(recs)
	if err != nil {
		t.Fatalf("AppendExternal: %v", err)
	}
	if last != 20 {
		t.Fatalf("last seq %d, want 20", last)
	}
	// Non-increasing or stale sequences are rejected.
	bad := []Record{mut(3)}
	bad[0].Seq = 20
	if _, err := l.AppendExternal(bad); err == nil {
		t.Fatal("AppendExternal accepted a stale sequence")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got := openCollect(t, dir, Options{})
	defer l2.Close()
	gotSeqs := make([]uint64, len(got))
	for i, r := range got {
		gotSeqs[i] = r.Seq
	}
	if !reflect.DeepEqual(gotSeqs, []uint64{10, 11, 20}) {
		t.Fatalf("replayed seqs %v, want [10 11 20]", gotSeqs)
	}
	// Internal appends continue above the external high-water mark.
	if seq, err := l2.Append(mut(4)); err != nil || seq != 21 {
		t.Fatalf("Append after external: seq %d err %v", seq, err)
	}
}

func TestSubscribeNotifiesOnAppend(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{})
	ch := l.Subscribe()
	select {
	case <-ch:
		t.Fatal("notified before any append")
	default:
	}
	if _, err := l.Append(mut(0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("no notification after append")
	}
	// Bursts coalesce; the channel must never block the appender.
	for i := 1; i < 10; i++ {
		if _, err := l.Append(mut(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	l.Unsubscribe(ch)
	ch2 := l.Subscribe()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case _, open := <-ch2:
		if open {
			// drain the coalesced token, then expect close
			if _, open = <-ch2; open {
				t.Fatal("channel still open after log close")
			}
		}
	case <-time.After(time.Second):
		t.Fatal("subscription not closed with the log")
	}
}

func TestSegmentViewActiveBytesAreFrameComplete(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{SegmentBytes: 256, Policy: SyncNever})
	defer l.Close()
	for i := 0; i < 20; i++ {
		if _, err := l.Append(mut(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	segs, lastSeq, _ := l.SegmentView()
	if lastSeq != 20 {
		t.Fatalf("lastSeq %d, want 20", lastSeq)
	}
	if !segs[len(segs)-1].Active {
		t.Fatal("last segment in view is not the active one")
	}
	// Every segment's reported byte span must decode to exactly its
	// records — the replication streamer relies on it.
	var prev, count uint64
	for _, seg := range segs {
		data, err := os.ReadFile(seg.Path)
		if err != nil {
			t.Fatalf("reading %s: %v", seg.Path, err)
		}
		data = data[:seg.Bytes]
		var off int
		for off < len(data) {
			rec, n, derr := DecodeFrame(data[off:])
			if derr != nil {
				t.Fatalf("segment %s: bad frame at %d: %v", seg.Path, off, derr)
			}
			if rec.Seq <= prev {
				t.Fatalf("segment %s: seq %d not above %d", seg.Path, rec.Seq, prev)
			}
			prev = rec.Seq
			count++
			off += n
		}
	}
	if count != 20 {
		t.Fatalf("segment view decoded %d records, want 20", count)
	}
}

func TestRetainHookPinsSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{SegmentBytes: 256, Policy: SyncNever})
	defer l.Close()
	for i := 0; i < 40; i++ {
		if _, err := l.Append(mut(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	// A follower still needs seq 5: checkpointing at 40 must keep every
	// segment containing 5 or above, but still advance the marker.
	l.SetRetain(func(lastSeq uint64) uint64 { return 5 })
	if err := l.Checkpoint(40); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	segs, _, cpSeq := l.SegmentView()
	if cpSeq != 40 {
		t.Fatalf("checkpoint marker %d, want 40", cpSeq)
	}
	oldest := uint64(0)
	for _, seg := range segs {
		if seg.Last > 0 {
			oldest = seg.First
			break
		}
	}
	if oldest == 0 || oldest > 5 {
		t.Fatalf("oldest retained first seq %d; seq 5 must still be present", oldest)
	}
	// Dropping the hook lets the next checkpoint truncate fully.
	l.SetRetain(nil)
	if err := l.Checkpoint(40); err != nil {
		t.Fatalf("Checkpoint 2: %v", err)
	}
	segs, _, _ = l.SegmentView()
	for _, seg := range segs {
		if seg.Last > 0 && seg.Last <= 40 && !seg.Active {
			t.Fatalf("segment %s (last %d) survived an unconstrained checkpoint", seg.Path, seg.Last)
		}
	}
}

func waitForCompressed(t *testing.T, l *Log, want int) []SegmentInfo {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		segs, _, _ := l.SegmentView()
		n := 0
		for _, s := range segs {
			if s.Compressed {
				n++
			}
		}
		if n >= want {
			return segs
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d segments compressed in time", n, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCompressionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{SegmentBytes: 256, Policy: SyncNever, Compress: true})
	for i := 0; i < 40; i++ {
		if _, err := l.Append(mut(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	segs := waitForCompressed(t, l, 2)
	for _, seg := range segs {
		if !seg.Compressed {
			continue
		}
		if !strings.HasSuffix(seg.Path, ".seg.gz") {
			t.Fatalf("compressed segment has path %s", seg.Path)
		}
		// Transparent read: the archive decodes to the same frames.
		data, err := ReadSegmentFile(seg.Path)
		if err != nil {
			t.Fatalf("ReadSegmentFile: %v", err)
		}
		var off int
		for off < len(data) {
			_, n, derr := DecodeFrame(data[off:])
			if derr != nil {
				t.Fatalf("decoding %s at %d: %v", seg.Path, off, derr)
			}
			off += n
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Replay reads the archives transparently.
	l2, got := openCollect(t, dir, Options{Compress: true})
	if len(got) != 40 {
		t.Fatalf("replayed %d records through compressed segments, want 40", len(got))
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close 2: %v", err)
	}
}

func TestCompressionCatchUpOnOpen(t *testing.T) {
	dir := t.TempDir()
	// Write sealed plain segments without compression...
	l, _ := openCollect(t, dir, Options{SegmentBytes: 256, Policy: SyncNever})
	for i := 0; i < 40; i++ {
		if _, err := l.Append(mut(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// ...then reopen with compression: the backlog catches up.
	l2, got := openCollect(t, dir, Options{SegmentBytes: 256, Policy: SyncNever, Compress: true})
	if len(got) != 40 {
		t.Fatalf("replayed %d, want 40", len(got))
	}
	waitForCompressed(t, l2, 2)
	if err := l2.Close(); err != nil {
		t.Fatalf("Close 2: %v", err)
	}
}

func TestCorruptArchiveRecoversValidPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{SegmentBytes: 256, Policy: SyncNever, Compress: true})
	for i := 0; i < 40; i++ {
		if _, err := l.Append(mut(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	segs := waitForCompressed(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Truncate the first archive mid-stream: open must salvage the
	// records that still decompress and discard everything after the
	// damage (post-corruption segments cannot be trusted).
	var victim string
	for _, seg := range segs {
		if seg.Compressed {
			victim = seg.Path
			break
		}
	}
	info, err := os.Stat(victim)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(victim, info.Size()/2); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	l2, got := openCollect(t, dir, Options{})
	defer l2.Close()
	if len(got) >= 40 {
		t.Fatalf("replayed %d records from a damaged log", len(got))
	}
	// The salvaged prefix is contiguous from the start.
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("salvaged record %d has seq %d", i, r.Seq)
		}
	}
	// The damaged archive was rewritten as a plain segment.
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Fatalf("damaged archive %s still present (err %v)", filepath.Base(victim), err)
	}
	// And the log still appends.
	if _, err := l2.Append(mut(99)); err != nil {
		t.Fatalf("Append after salvage: %v", err)
	}
}

func TestWriteCheckpointFileBootstrapsCursor(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpointFile(dir, 77); err != nil {
		t.Fatalf("WriteCheckpointFile: %v", err)
	}
	if seq, err := CheckpointSeq(dir); err != nil || seq != 77 {
		t.Fatalf("CheckpointSeq: %d, %v", seq, err)
	}
	l, got := openCollect(t, dir, Options{})
	defer l.Close()
	if len(got) != 0 {
		t.Fatalf("fresh bootstrapped dir replayed %d records", len(got))
	}
	if l.LastSeq() != 77 {
		t.Fatalf("LastSeq %d, want 77", l.LastSeq())
	}
	// External appends resume at the primary's next sequence.
	rec := mut(0)
	rec.Seq = 78
	if _, err := l.AppendExternal([]Record{rec}); err != nil {
		t.Fatalf("AppendExternal: %v", err)
	}
}

func TestInitialSeqStampsEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, got := openCollect(t, dir, Options{InitialSeq: 1})
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	if l.LastSeq() != 1 {
		t.Fatalf("LastSeq %d, want 1 (stamped)", l.LastSeq())
	}
	// The stamp is a real checkpoint marker, readable without the log.
	if seq, err := CheckpointSeq(dir); err != nil || seq != 1 {
		t.Fatalf("CheckpointSeq: %d, %v (want 1)", seq, err)
	}
	// First record lands above the stamp.
	if seq, err := l.Append(mut(0)); err != nil || seq != 2 {
		t.Fatalf("Append: seq %d err %v, want 2", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen: the stamp persists and replay skips nothing it shouldn't.
	l2, got2 := openCollect(t, dir, Options{InitialSeq: 1})
	defer l2.Close()
	if len(got2) != 1 || got2[0].Seq != 2 {
		t.Fatalf("replayed %v, want one record at seq 2", got2)
	}
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq after reopen %d, want 2", l2.LastSeq())
	}
}

func TestInitialSeqIgnoredWithHistory(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{})
	if seq, err := l.Append(mut(0)); err != nil || seq != 1 {
		t.Fatalf("Append: seq %d err %v", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A log that already has records must not be restamped.
	l2, got := openCollect(t, dir, Options{InitialSeq: 1})
	defer l2.Close()
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("replayed %v, want the original record at seq 1", got)
	}
	if l2.LastSeq() != 1 {
		t.Fatalf("LastSeq %d, want 1", l2.LastSeq())
	}
}

package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/rdf"
)

func mut(i int) Record {
	return Record{
		Kind:  KindMutation,
		Epoch: uint64(i + 1),
		Adds: []rdf.Triple{{
			S: rdf.NewIRI(fmt.Sprintf("http://x/s%d", i)),
			P: rdf.NewIRI("http://x/p"),
			O: rdf.NewIRI(fmt.Sprintf("http://x/o%d", i)),
		}},
		Dels: []rdf.Triple{{
			S: rdf.NewIRI(fmt.Sprintf("http://x/d%d", i)),
			P: rdf.NewIRI("http://x/q"),
			O: rdf.NewLiteral(fmt.Sprintf("lit \"quoted\" %d\n", i)),
		}},
	}
}

func openCollect(t *testing.T, dir string, opts Options) (*Log, []Record) {
	t.Helper()
	var got []Record
	l, err := Open(dir, opts, ConsumerFunc(func(r Record) error {
		got = append(got, r)
		return nil
	}))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, got := openCollect(t, dir, Options{})
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	want := []Record{mut(0), mut(1), {Kind: KindClear, Epoch: 3}, mut(3)}
	for i, r := range want {
		seq, err := l.Append(r)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append %d: seq %d, want %d", i, seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got := openCollect(t, dir, Options{})
	defer l2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d", i, r.Seq)
		}
		w := want[i]
		w.Seq = uint64(i + 1)
		if !reflect.DeepEqual(r, w) {
			t.Errorf("record %d: got %+v, want %+v", i, r, w)
		}
	}
	// Sequence numbering continues across restarts.
	seq, err := l2.Append(mut(9))
	if err != nil || seq != uint64(len(want)+1) {
		t.Fatalf("post-reopen Append: seq %d err %v", seq, err)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{SegmentBytes: 256, Policy: SyncNever})
	for i := 0; i < 40; i++ {
		if _, err := l.Append(mut(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, got := openCollect(t, dir, Options{SegmentBytes: 256})
	defer l2.Close()
	if len(got) != 40 {
		t.Fatalf("replayed %d, want 40", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("replay out of order at %d: seq %d", i, r.Seq)
		}
	}
}

func TestCheckpointTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 30; i++ {
		if _, err := l.Append(mut(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats()
	if err := l.Checkpoint(20); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	after := l.Stats()
	if after.Segments >= before.Segments {
		t.Fatalf("checkpoint removed no segments: %d -> %d", before.Segments, after.Segments)
	}
	if after.CheckpointSeq != 20 {
		t.Fatalf("CheckpointSeq = %d", after.CheckpointSeq)
	}
	l.Close()

	// Replay resumes strictly above the checkpoint.
	l2, got := openCollect(t, dir, Options{SegmentBytes: 256})
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	if got[0].Seq != 21 || got[len(got)-1].Seq != 30 {
		t.Fatalf("replayed seqs %d..%d, want 21..30", got[0].Seq, got[len(got)-1].Seq)
	}
	// Checkpointing everything leaves a log that replays nothing.
	if err := l2.Checkpoint(30); err != nil {
		t.Fatalf("Checkpoint(30): %v", err)
	}
	l2.Close()
	l3, got := openCollect(t, dir, Options{SegmentBytes: 256})
	defer l3.Close()
	if len(got) != 0 {
		t.Fatalf("replayed %d records after full checkpoint", len(got))
	}
	if l3.LastSeq() != 30 {
		t.Fatalf("LastSeq after full checkpoint = %d, want 30", l3.LastSeq())
	}
}

func TestCheckpointRejectsBadSeq(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{})
	defer l.Close()
	if _, err := l.Append(mut(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(5); err == nil {
		t.Fatal("Checkpoint beyond lastSeq succeeded")
	}
	if err := l.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(0); err == nil {
		t.Fatal("Checkpoint behind existing checkpoint succeeded")
	}
}

// TestCrashPointPrefixProperty is the crash-point sweep: a log truncated
// at EVERY byte offset must replay exactly the records whose frames fully
// survive — a prefix — and never error or panic.
func TestCrashPointPrefixProperty(t *testing.T) {
	src := t.TempDir()
	const n = 12
	l, _ := openCollect(t, src, Options{})
	ends := make([]int64, 0, n+1) // ends[k] = file size after k records
	ends = append(ends, 0)
	segPath := filepath.Join(src, segName(1))
	for i := 0; i < n; i++ {
		if _, err := l.Append(mut(i)); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(segPath)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, info.Size())
	}
	l.Close()
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	// complete(cut) = number of whole frames within the first cut bytes.
	complete := func(cut int64) int {
		k := 0
		for k+1 <= n && ends[k+1] <= cut {
			k++
		}
		return k
	}

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lc, got := openCollect(t, dir, Options{})
		want := complete(cut)
		if len(got) != want {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(got), want)
		}
		for i, r := range got {
			if r.Seq != uint64(i+1) {
				t.Fatalf("cut=%d: record %d has seq %d (not a prefix)", cut, i, r.Seq)
			}
		}
		// The log stays appendable after recovery, continuing the prefix.
		seq, err := lc.Append(mut(99))
		if err != nil || seq != uint64(want+1) {
			t.Fatalf("cut=%d: append after recovery: seq %d err %v", cut, seq, err)
		}
		lc.Close()
	}
}

// TestMidLogCorruptionStopsReplay flips a payload byte in the middle of a
// segment: everything from that frame on must be discarded.
func TestMidLogCorruptionStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(mut(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, got := openCollect(t, dir, Options{})
	defer l2.Close()
	if len(got) == 0 || len(got) >= 10 {
		t.Fatalf("replayed %d records after mid-log corruption, want a proper prefix", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("non-prefix replay: record %d seq %d", i, r.Seq)
		}
	}
}

// TestCorruptionDropsLaterSegments: a bad frame in an earlier segment must
// not let records from later segments replay (they would be out of order).
func TestCorruptionDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 30; i++ {
		if _, err := l.Append(mut(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("need ≥3 segments, got %d", st.Segments)
	}
	l.Close()
	names, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := filepath.Join(dir, names[0])
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, got := openCollect(t, dir, Options{SegmentBytes: 256})
	defer l2.Close()
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("non-prefix replay: record %d seq %d", i, r.Seq)
		}
	}
	rest, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 {
		t.Fatalf("later segments survived corruption: %v", rest)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in     string
		policy SyncPolicy
		iv     time.Duration
		ok     bool
	}{
		{"", SyncAlways, 0, true},
		{"always", SyncAlways, 0, true},
		{"never", SyncNever, 0, true},
		{"interval=250ms", SyncEvery, 250 * time.Millisecond, true},
		{"interval=0s", 0, 0, false},
		{"interval=", 0, 0, false},
		{"sometimes", 0, 0, false},
	}
	for _, c := range cases {
		p, iv, err := ParseSyncPolicy(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseSyncPolicy(%q): err=%v, ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && (p != c.policy || iv != c.iv) {
			t.Errorf("ParseSyncPolicy(%q) = %v,%v want %v,%v", c.in, p, iv, c.policy, c.iv)
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, opts := range []Options{
		{Policy: SyncAlways},
		{Policy: SyncEvery, Interval: 10 * time.Millisecond},
		{Policy: SyncNever},
	} {
		dir := t.TempDir()
		l, _ := openCollect(t, dir, opts)
		for i := 0; i < 5; i++ {
			if _, err := l.Append(mut(i)); err != nil {
				t.Fatal(err)
			}
		}
		if opts.Policy == SyncEvery {
			time.Sleep(50 * time.Millisecond) // let the background syncer run
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		st := l.Stats()
		if opts.Policy == SyncAlways && st.Fsyncs < 5 {
			t.Errorf("always: %d fsyncs for 5 appends", st.Fsyncs)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		_, got := openCollect(t, dir, opts)
		if len(got) != 5 {
			t.Errorf("policy %v: replayed %d records", opts.Policy, len(got))
		}
	}
}

func TestClosedLogErrors(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{})
	if _, err := l.Append(mut(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(mut(1)); err != ErrClosed {
		t.Fatalf("Append on closed log: %v", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync on closed log: %v", err)
	}
	if err := l.Checkpoint(1); err != ErrClosed {
		t.Fatalf("Checkpoint on closed log: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestCorruptCheckpointFileRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{})
	if _, err := l.Append(mut(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := os.WriteFile(filepath.Join(dir, checkpointName), []byte("amber-wal v1 0 deadbeef\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}, nil); err == nil {
		t.Fatal("Open accepted a checkpoint file with a bad checksum")
	}
}

// TestDirectoryLock: a second Open of a live log directory must fail;
// closing the first releases it.
func TestDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{})
	if _, err := Open(dir, Options{}, nil); err == nil {
		t.Fatal("second Open of a live directory succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	l2.Close()
}

// TestCrossSegmentMonotonicity: a later segment whose sequences do not
// continue strictly above the earlier ones (a restored backup copy) must
// not replay — the scan treats it as corruption.
func TestCrossSegmentMonotonicity(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 20; i++ {
		if _, err := l.Append(mut(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	names, err := listSegments(dir)
	if err != nil || len(names) < 2 {
		t.Fatalf("need >=2 segments: %v (%v)", names, err)
	}
	// Duplicate the first segment's content under a name sorting last:
	// its records' sequences rewind below the preceding segment's.
	data, err := os.ReadFile(filepath.Join(dir, names[0]))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segName(1<<40)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, got := openCollect(t, dir, Options{SegmentBytes: 256})
	defer l2.Close()
	if len(got) != 20 {
		t.Fatalf("replayed %d records, want 20 (stale copy must not replay)", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d", i, r.Seq)
		}
	}
}

// TestOversizedAppendRejected: a record whose payload exceeds the replay
// corruption threshold must be refused, not acknowledged.
func TestOversizedAppendRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates >1GiB")
	}
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{Policy: SyncNever})
	defer l.Close()
	huge := Record{Kind: KindMutation, Adds: []rdf.Triple{{
		S: rdf.NewIRI("http://x/s"),
		P: rdf.NewIRI("http://x/p"),
		O: rdf.NewLiteral(string(make([]byte, maxPayload))),
	}}}
	if _, err := l.Append(huge); err == nil {
		t.Fatal("oversized record acknowledged")
	}
	// The log remains usable and the reject left nothing on disk.
	if seq, err := l.Append(mut(0)); err != nil || seq != 1 {
		t.Fatalf("append after reject: seq=%d err=%v", seq, err)
	}
}

// TestTypedObjectRoundTrip: datatypes, language tags and blank nodes
// survive Append → reopen → Replay; IRIs and plain literals keep the
// original single-byte object codes (see appendTriple).
func TestTypedObjectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec := Record{
		Kind:  KindMutation,
		Epoch: 1,
		Adds: []rdf.Triple{
			{S: rdf.NewIRI("http://x/s"), P: rdf.NewIRI("http://p/age"),
				O: rdf.NewTypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer")},
			{S: rdf.NewBlank("b7"), P: rdf.NewIRI("http://p/greet"),
				O: rdf.NewLangLiteral("hi", "en")},
			{S: rdf.NewIRI("http://x/s"), P: rdf.NewIRI("http://p/knows"),
				O: rdf.NewBlank("b8")},
		},
		Dels: []rdf.Triple{
			{S: rdf.NewIRI("http://x/s"), P: rdf.NewIRI("http://p/name"),
				O: rdf.NewLiteral("plain")},
		},
	}
	log, err := Open(dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	var replayed []Record
	log2, err := Open(dir, Options{}, ConsumerFunc(func(r Record) error {
		replayed = append(replayed, r)
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(replayed) != 1 {
		t.Fatalf("replayed %d records, want 1", len(replayed))
	}
	got := replayed[0]
	if !reflect.DeepEqual(got.Adds, rec.Adds) {
		t.Errorf("adds round trip:\n got %v\nwant %v", got.Adds, rec.Adds)
	}
	if !reflect.DeepEqual(got.Dels, rec.Dels) {
		t.Errorf("dels round trip:\n got %v\nwant %v", got.Dels, rec.Dels)
	}
}

package wal

import (
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Sealed-segment compression. Segments are immutable once sealed, which
// makes them safe to gzip in the background: the compressor writes
// wal-<first>.seg.gz.tmp, fsyncs, renames to wal-<first>.seg.gz (atomic),
// and only then removes the plain file. A crash at any point leaves either
// the plain file, the complete archive, or both — listSegments prefers the
// archive and removes the leftover. RDF logs are IRI-heavy and repetitive,
// so the archives typically shrink severalfold, which is exactly the
// bandwidth the replication streamer would otherwise re-read from disk.

// removeCompressTemps clears temp files from a crashed compressor or
// prefix rewrite; whatever they were being built from is still present.
func removeCompressTemps(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), segPrefix) && strings.HasSuffix(e.Name(), ".tmp") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// readSegmentData reads a segment's record bytes, decompressing if
// needed. complete reports whether the whole file was readable: a
// truncated or corrupt gzip stream yields the prefix that did decompress
// with complete=false, mirroring how a torn plain tail yields a readable
// prefix. Only hard I/O errors are returned as err.
func readSegmentData(path string) (data []byte, complete bool, err error) {
	if !strings.HasSuffix(path, gzSuffix) {
		data, err = os.ReadFile(path)
		return data, err == nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, false, nil // corrupt header: nothing salvageable
	}
	data, err = io.ReadAll(zr)
	if err != nil {
		return data, false, nil // keep the prefix that did decompress
	}
	if err := zr.Close(); err != nil {
		return data, false, nil
	}
	return data, true, nil
}

// ReadSegmentFile returns a segment file's full record bytes,
// transparently decompressing .seg.gz archives. The replication streamer
// uses it to serve sealed history. An incomplete archive is an error —
// stream reads must not silently serve a shortened segment.
func ReadSegmentFile(path string) ([]byte, error) {
	data, complete, err := readSegmentData(path)
	if err != nil {
		return nil, err
	}
	if !complete {
		return nil, fmt.Errorf("wal: segment %s is incomplete or corrupt", path)
	}
	return data, nil
}

// writeFileDurable writes data to path via a temp file, fsync, and
// atomic rename.
func writeFileDurable(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// compressInBackground hands the sealed segment whose first sequence is
// first to the background compressor. Caller holds mu.
func (l *Log) compressInBackground(first uint64) {
	l.compressWG.Add(1)
	go func() {
		defer l.compressWG.Done()
		l.compressSegment(first)
	}()
}

// compressSegment gzips one sealed segment and swaps the log's metadata
// to the archive. Losing a race with Checkpoint (segment already removed)
// or Close is fine: each step leaves the directory in a state open
// recovers from.
func (l *Log) compressSegment(first uint64) {
	l.mu.Lock()
	var plain string
	for _, seg := range l.sealed {
		if seg.first == first && !seg.compressed {
			plain = seg.path
			break
		}
	}
	closed := l.closed
	l.mu.Unlock()
	if plain == "" || closed {
		return
	}

	gzPath := plain + ".gz"
	size, err := gzipFile(plain, gzPath)
	if err != nil {
		os.Remove(gzPath + ".tmp")
		return // best-effort: the plain segment stays authoritative
	}

	l.mu.Lock()
	swapped := false
	for i := range l.sealed {
		if l.sealed[i].first == first && !l.sealed[i].compressed {
			l.sealed[i].path = gzPath
			l.sealed[i].compressed = true
			l.sealed[i].bytes = size
			swapped = true
			break
		}
	}
	closed = l.closed
	l.mu.Unlock()

	if !swapped && !closed {
		// Checkpoint removed the segment while we compressed it; the
		// archive is now orphaned history.
		os.Remove(gzPath)
		return
	}
	// The archive is complete and durable; retire the plain original.
	// (After close the metadata no longer matters, but the disk must not
	// keep both copies: the next open would just dedupe them anyway.)
	os.Remove(plain)
	SyncDir(l.dir) //nolint:errcheck // advisory; open dedupes leftovers
}

// gzipFile compresses src into dst via dst+".tmp" with an fsynced atomic
// rename, returning the archive's size.
func gzipFile(src, dst string) (int64, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	tmp := dst + ".tmp"
	out, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	zw := gzip.NewWriter(out)
	if _, err := io.Copy(zw, in); err != nil {
		out.Close()
		return 0, err
	}
	if err := zw.Close(); err != nil {
		out.Close()
		return 0, err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return 0, err
	}
	if err := out.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, dst); err != nil {
		return 0, err
	}
	if err := SyncDir(filepath.Dir(dst)); err != nil {
		return 0, err
	}
	info, err := os.Stat(dst)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the segment scanner as a log
// file. Whatever the input, Open must not panic: it may only stop at the
// first bad frame, replay the valid prefix in strictly increasing
// sequence order, and leave a log that accepts appends.
func FuzzWALReplay(f *testing.F) {
	// Seed with a well-formed log...
	var buf []byte
	for i := 0; i < 3; i++ {
		r := mut(i)
		r.Seq = uint64(i + 1)
		buf = encodeFrame(buf, &r)
	}
	f.Add(buf)
	// ...its torn truncations...
	f.Add(buf[:len(buf)-3])
	f.Add(buf[:7])
	// ...a bit-flipped variant, and degenerate inputs.
	flipped := append([]byte(nil), buf...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var last uint64
		l, err := Open(dir, Options{Policy: SyncNever}, ConsumerFunc(func(r Record) error {
			if r.Seq <= last {
				t.Fatalf("replay not strictly increasing: %d after %d", r.Seq, last)
			}
			last = r.Seq
			return nil
		}))
		if err != nil {
			// Only environmental failures (I/O) may error; framing damage
			// must degrade to a shorter prefix instead.
			t.Fatalf("Open errored on framing input: %v", err)
		}
		if _, err := l.Append(mut(0)); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		l.Close()
	})
}

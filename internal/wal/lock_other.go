//go:build !unix

package wal

import "os"

// lockFile is a no-op where flock is unavailable: the single-writer
// guarantee then rests on the operator, as it did before locking existed.
func lockFile(f *os.File) error { return nil }

// Package wal implements the write-ahead log behind AMbER's crash-safe
// live updates: an append-only, segmented log of update batches with
// length+CRC32-C-framed records, a configurable fsync policy, replay on
// open, and checkpoint-driven truncation.
//
// Layout: a log directory holds segment files named wal-<firstseq>.seg
// (sixteen hex digits, so lexical order is sequence order) plus an
// optional `checkpoint` file recording the sequence number up to which
// the store's state is durable elsewhere (a checkpointed snapshot).
// Records carry a log sequence number that increases monotonically across
// restarts; replay applies, in order, exactly the records with a sequence
// above the checkpoint.
//
// Torn writes: a crash can leave a partially written frame at the log
// tail. Replay validates each frame's length and checksum and stops at
// the first bad one — the surviving records are a prefix of the
// acknowledged history, which is the strongest guarantee an append-only
// log can give. Open truncates the torn tail (and discards any later
// segments, which can only exist after mid-log corruption) so appending
// resumes from a clean boundary.
//
// Durability policy: SyncAlways fsyncs before Append returns (no
// acknowledged record is ever lost, at one fsync per batch); SyncEvery
// fsyncs in the background at a fixed interval (a crash loses at most the
// last interval); SyncNever leaves syncing to the OS page cache. Every
// policy writes frames straight through to the file — there is no
// user-space buffer — so even SyncNever survives a process kill; only an
// OS crash can lose unsynced records.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Consumer receives replayed or replicated records in sequence order.
// The log's replay on Open and a replication follower's network catch-up
// share this one interface, so the store-side apply path is exercised by
// the same crash-point tests whichever way records arrive.
type Consumer interface {
	Consume(Record) error
}

// ConsumerFunc adapts a plain function to the Consumer interface.
type ConsumerFunc func(Record) error

// Consume calls f(rec).
func (f ConsumerFunc) Consume(rec Record) error { return f(rec) }

// SegmentFile is the write-side surface the log needs from a segment
// file. Production code uses *os.File; fault-injection tests wrap it to
// model torn writes and bit flips (see internal/errorfs).
type SegmentFile interface {
	io.Writer
	Sync() error
	Close() error
}

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs before every Append returns (the default).
	SyncAlways SyncPolicy = iota
	// SyncEvery fsyncs at a fixed interval in the background.
	SyncEvery
	// SyncNever never fsyncs explicitly; the OS flushes when it pleases.
	SyncNever
)

// String renders the policy in the -fsync flag syntax.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncEvery:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
	}
}

// ParseSyncPolicy parses the -fsync flag syntax: "always", "never", or
// "interval=<duration>" (e.g. "interval=100ms"). The empty string means
// SyncAlways.
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch {
	case s == "" || s == "always":
		return SyncAlways, 0, nil
	case s == "never":
		return SyncNever, 0, nil
	case strings.HasPrefix(s, "interval="):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "interval="))
		if err != nil || d <= 0 {
			return 0, 0, fmt.Errorf("wal: bad fsync interval %q", s)
		}
		return SyncEvery, d, nil
	default:
		return 0, 0, fmt.Errorf("wal: unknown fsync policy %q (use always, never or interval=<duration>)", s)
	}
}

// Options tune a log. The zero value selects the documented defaults.
type Options struct {
	// Policy is the fsync policy; default SyncAlways.
	Policy SyncPolicy
	// Interval is the background fsync period for SyncEvery; default 1s.
	Interval time.Duration
	// SegmentBytes rotates to a fresh segment once the active one exceeds
	// this size; default 16 MiB.
	SegmentBytes int64
	// Compress gzips segments in the background once they are sealed.
	// Replay and streaming reads handle compressed segments transparently;
	// the active segment is always plain so appends stay raw writes.
	Compress bool
	// WrapFile, when set, wraps each newly opened active segment file
	// before the log writes to it. Fault-injection tests use it to model
	// torn writes and silent bit flips under the log.
	WrapFile func(*os.File) SegmentFile
	// InitialSeq, when non-zero, is adopted as the sequence cursor if the
	// log opens with no history at all (no checkpoint marker, no surviving
	// records): lastSeq starts there and the first append lands at
	// InitialSeq+1. Durable opens that loaded a non-WAL base set this to 1
	// so the base "occupies" a sequence — a replication snapshot of the
	// untouched store then reports a non-zero sequence and followers never
	// sit at cursor 0, which the primary must refuse. The stamp persists
	// as a checkpoint marker, so every later open agrees.
	InitialSeq uint64
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	return o
}

// Stats is a point-in-time description of the log, the quantities the
// server's /stats durability section reports.
type Stats struct {
	// Dir is the log directory.
	Dir string
	// Policy renders the effective fsync policy ("always", "never",
	// "interval=<d>").
	Policy string
	// Bytes is the total size of all segment files; Segments their count
	// (including the active one).
	Bytes    int64
	Segments int
	// LastSeq is the sequence number of the most recent record (0 when
	// the log has never held one); CheckpointSeq the sequence up to which
	// records have been truncated away.
	LastSeq       uint64
	CheckpointSeq uint64
	// Appends and Fsyncs count operations since the log was opened.
	Appends uint64
	Fsyncs  uint64
	// Replayed is the number of records replayed when the log was opened.
	Replayed int
	// Checkpoints counts Checkpoint calls since open; LastCheckpoint is
	// the wall-clock time of the most recent one (zero if none ran).
	Checkpoints    uint64
	LastCheckpoint time.Time
}

// segment is one on-disk log file.
type segment struct {
	path       string
	first      uint64 // sequence of its first record
	last       uint64 // sequence of its last record (0 while empty)
	bytes      int64  // on-disk size (compressed size once gzipped)
	compressed bool
}

// SegmentInfo describes one on-disk segment for readers outside the
// package — the replication streamer walks this view to serve history.
type SegmentInfo struct {
	Path       string
	First      uint64 // sequence of the segment's first record
	Last       uint64 // sequence of its last record (0 while empty)
	Bytes      int64  // on-disk size
	Compressed bool
	Active     bool // the segment still taking appends
}

const (
	segPrefix      = "wal-"
	segSuffix      = ".seg"
	gzSuffix       = ".seg.gz"
	checkpointName = "checkpoint"
	lockName       = "LOCK"
)

// maxRetainedBuf caps the scratch encoding buffer kept between appends;
// a one-off giant batch must not pin its allocation for the log's life.
const maxRetainedBuf = 1 << 20

func segName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix)
}

func parseSegName(name string) (first uint64, compressed bool, ok bool) {
	if !strings.HasPrefix(name, segPrefix) {
		return 0, false, false
	}
	hex := strings.TrimPrefix(name, segPrefix)
	switch {
	case strings.HasSuffix(hex, gzSuffix):
		hex = strings.TrimSuffix(hex, gzSuffix)
		compressed = true
	case strings.HasSuffix(hex, segSuffix):
		hex = strings.TrimSuffix(hex, segSuffix)
	default:
		return 0, false, false
	}
	if len(hex) != 16 {
		return 0, false, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false, false
	}
	return v, compressed, true
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; Append calls are serialized internally (callers typically hold
// their own writer lock anyway).
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	lockf    *os.File    // flock'd LOCK file guarding the directory
	f        SegmentFile // active segment
	active   segment     // active segment metadata
	sealed   []segment   // earlier segments, in sequence order
	lastSeq  uint64
	cpSeq    uint64
	dirty    bool // bytes written since the last fsync
	closed   bool
	appends  uint64
	fsyncs   uint64
	cpCount  uint64
	cpTime   time.Time
	replayed int
	buf      []byte // scratch frame-encoding buffer

	// subs are append-notification channels (capacity 1, coalescing);
	// retain, when set, returns the lowest sequence a reader still needs,
	// pinning segments against checkpoint truncation.
	subs   map[chan struct{}]struct{}
	retain func(lastSeq uint64) uint64

	compressWG sync.WaitGroup // in-flight background segment compressions

	stop chan struct{} // interval syncer shutdown; nil unless SyncEvery
	done chan struct{}
}

// Open opens (creating if necessary) the log in dir, replays every record
// above the checkpoint through c in sequence order, truncates any torn
// tail, and leaves the log ready for appending. A nil consumer skips
// replay delivery but still scans (the scan is what finds the last
// sequence and the torn tail). A Consume error aborts the open.
func Open(dir string, opts Options, c Consumer) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// One writer per directory: two logs appending to the same segments
	// would interleave frames and sequence numbers, and the next replay
	// would silently truncate at the first inconsistency — acknowledged
	// writes from both would vanish. The kernel drops the lock when the
	// holder dies, so crashes never wedge the directory.
	lockf, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := lockFile(lockf); err != nil {
		lockf.Close()
		return nil, fmt.Errorf("wal: directory %s is already in use by another log: %w", dir, err)
	}
	l, err := openLocked(dir, opts, c)
	if err != nil {
		lockf.Close()
		return nil, err
	}
	l.lockf = lockf
	if opts.Policy == SyncEvery {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	if opts.Compress {
		// Sealed plain segments left by earlier (uncompressed) runs catch
		// up in the background.
		l.mu.Lock()
		for _, seg := range l.sealed {
			if !seg.compressed {
				l.compressInBackground(seg.first)
			}
		}
		l.mu.Unlock()
	}
	return l, nil
}

// openLocked is the body of Open, run while holding the directory lock.
func openLocked(dir string, opts Options, c Consumer) (*Log, error) {
	l := &Log{dir: dir, opts: opts, subs: make(map[chan struct{}]struct{})}
	cpSeq, err := readCheckpoint(filepath.Join(dir, checkpointName))
	if err != nil {
		return nil, err
	}
	l.cpSeq = cpSeq
	l.lastSeq = cpSeq

	if err := removeCompressTemps(dir); err != nil {
		return nil, err
	}
	names, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	// Scan segments in order, replaying valid records. The first bad frame
	// ends the valid prefix: its segment is truncated there and every
	// later segment is dropped (they can only hold post-corruption data).
	// prev enforces strictly increasing sequences across the whole log,
	// not just within one segment — a stale or restored-from-backup
	// segment must not replay duplicate or out-of-order records.
	corrupted := false
	var prev uint64
	for _, name := range names {
		path := filepath.Join(dir, name)
		if corrupted {
			if err := os.Remove(path); err != nil {
				return nil, err
			}
			continue
		}
		first, compressed, _ := parseSegName(name)
		seg := segment{path: path, first: first, compressed: compressed}
		data, complete, readErr := readSegmentData(path)
		if readErr != nil {
			return nil, readErr
		}
		validEnd, last, n, scanErr := l.scanRecords(data, &prev, c)
		if scanErr != nil {
			return nil, scanErr
		}
		seg.last = last
		switch {
		case compressed && complete && validEnd == int64(len(data)):
			info, statErr := os.Stat(path)
			if statErr != nil {
				return nil, statErr
			}
			seg.bytes = info.Size()
		case compressed:
			// A gzip segment with a bad tail cannot be truncated in place:
			// rewrite the validated prefix as a plain segment, durably, and
			// drop the archive. Later segments can only hold
			// post-corruption data, same as after a torn plain tail.
			plain := strings.TrimSuffix(path, gzSuffix) + segSuffix
			if err := writeFileDurable(plain, data[:validEnd]); err != nil {
				return nil, err
			}
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return nil, err
			}
			if err := SyncDir(dir); err != nil {
				return nil, err
			}
			seg.path = plain
			seg.compressed = false
			seg.bytes = validEnd
			corrupted = true
		default:
			seg.bytes = validEnd
			if int64(len(data)) > validEnd {
				// Torn or corrupt tail: cut it so appends resume cleanly.
				if err := os.Truncate(path, validEnd); err != nil {
					return nil, err
				}
				corrupted = true
			}
		}
		l.replayed += n
		l.sealed = append(l.sealed, seg)
	}

	// A log with no history at all adopts the caller's synthetic base
	// sequence (see Options.InitialSeq), written durably as a checkpoint
	// marker so the stamp survives restarts. lastSeq == 0 here implies
	// both no checkpoint and no replayed records.
	if opts.InitialSeq > 0 && l.lastSeq == 0 {
		if err := writeCheckpoint(filepath.Join(dir, checkpointName), opts.InitialSeq); err != nil {
			return nil, err
		}
		l.cpSeq = opts.InitialSeq
		l.lastSeq = opts.InitialSeq
	}

	// The newest scanned plain segment becomes the active one; with none
	// (fresh log, everything checkpointed away, or a compressed — hence
	// sealed — newest segment) a new segment starts at lastSeq+1.
	if n := len(l.sealed); n > 0 && !l.sealed[n-1].compressed {
		l.active = l.sealed[n-1]
		l.sealed = l.sealed[:n-1]
		var f *os.File
		f, err = os.OpenFile(l.active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err == nil {
			l.f = l.wrapFile(f)
		}
	} else {
		err = l.newSegment(l.lastSeq + 1)
	}
	if err != nil {
		return nil, err
	}
	return l, nil
}

// wrapFile applies the fault-injection hook, if any.
func (l *Log) wrapFile(f *os.File) SegmentFile {
	if l.opts.WrapFile != nil {
		return l.opts.WrapFile(f)
	}
	return f
}


// scanRecords replays data's valid records, returning the byte offset of
// the end of the last valid frame, the sequence of the last valid record
// (0 if none), and how many records were delivered to c. prev is the
// cross-segment sequence cursor: records must continue strictly above it.
func (l *Log) scanRecords(data []byte, prev *uint64, c Consumer) (int64, uint64, int, error) {
	var off int64
	var last uint64
	applied := 0
	for {
		rec, n, derr := DecodeFrame(data[off:])
		if derr != nil {
			break
		}
		if rec.Seq <= *prev {
			break // sequences must strictly increase across the whole log
		}
		off += int64(n)
		last = rec.Seq
		*prev = rec.Seq
		if rec.Seq > l.lastSeq {
			l.lastSeq = rec.Seq
		}
		if rec.Seq > l.cpSeq && c != nil {
			if aerr := c.Consume(rec); aerr != nil {
				return 0, 0, 0, fmt.Errorf("wal: replaying record %d: %w", rec.Seq, aerr)
			}
			applied++
		}
	}
	return off, last, applied, nil
}

// listSegments returns segment file names in sequence order. When both a
// plain and a compressed file exist for the same first sequence (a crash
// between the compressor's rename and its removal of the original), the
// compressed one wins — its rename was atomic, so it is complete — and
// the leftover plain file is removed.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byFirst := make(map[uint64]string)
	var firsts []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, compressed, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		prev, dup := byFirst[first]
		if !dup {
			byFirst[first] = e.Name()
			firsts = append(firsts, first)
			continue
		}
		stale := e.Name()
		if compressed {
			stale = prev
			byFirst[first] = e.Name()
		}
		if err := os.Remove(filepath.Join(dir, stale)); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	names := make([]string, len(firsts))
	for i, f := range firsts {
		names[i] = byFirst[f]
	}
	return names, nil
}

// newSegment creates and activates a fresh segment whose first record
// will carry sequence first. Caller holds mu (or is Open, pre-publish).
func (l *Log) newSegment(first uint64) error {
	path := filepath.Join(l.dir, segName(first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if l.f != nil {
		l.sealed = append(l.sealed, l.active)
	}
	l.f = l.wrapFile(f)
	l.active = segment{path: path, first: first}
	return nil
}

// Append assigns the next sequence number to rec, writes its frame, and
// — under SyncAlways — fsyncs before returning. The record is part of the
// durable history from the moment Append returns.
func (l *Log) Append(rec Record) (uint64, error) {
	return l.AppendBatch([]Record{rec})
}

// AppendBatch is the group-commit append: it assigns consecutive
// sequence numbers to recs (in place), encodes every frame into one
// contiguous span, writes the span with a single write, and — under
// SyncAlways — issues one fsync for the whole group before returning,
// amortizing the durability cost across the group. It returns the last
// assigned sequence number.
//
// Failure atomicity: an oversized record is detected before any byte
// reaches the file, so the whole group is rejected and the log stays
// usable. A write or sync failure may leave a torn tail — exactly what
// replay tolerates — and closes the log so nothing is written past it;
// none of the group's records count as acknowledged.
func (l *Log) AppendBatch(recs []Record) (uint64, error) {
	return l.appendBatch(recs, true)
}

// AppendBatchNoSync appends like AppendBatch but skips the SyncAlways
// fsync: the caller takes over the durability barrier — group commit
// overlaps the fsync with applying the group — and must call Sync
// before acknowledging any record of the batch. Under other policies it
// is identical to AppendBatch.
func (l *Log) AppendBatchNoSync(recs []Record) (uint64, error) {
	return l.appendBatch(recs, false)
}

func (l *Log) appendBatch(recs []Record, sync bool) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	for i := range recs {
		recs[i].Seq = l.lastSeq + 1 + uint64(i)
	}
	return l.appendAssigned(recs, sync)
}

// AppendExternal appends records that already carry sequence numbers —
// the replication path, where a follower preserves the primary's
// sequences so stream cursors are cluster-wide and a follower's local
// replay resumes at the primary's offsets. Sequences must be strictly
// increasing and above everything already in the log (gaps are fine;
// replay tolerates them). Sync policy applies as in AppendBatch.
func (l *Log) AppendExternal(recs []Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	prev := l.lastSeq
	for i := range recs {
		if recs[i].Seq <= prev {
			return 0, fmt.Errorf("wal: external record seq %d not above %d", recs[i].Seq, prev)
		}
		prev = recs[i].Seq
	}
	return l.appendAssigned(recs, true)
}

// appendAssigned is the shared append body: it encodes every frame of the
// group (sequences already assigned) into one contiguous span, writes the
// span with a single write, and — under SyncAlways, when sync — issues
// one fsync for the whole group before returning. It returns the last
// appended sequence number. Caller holds mu.
//
// Failure atomicity: an oversized record is detected before any byte
// reaches the file, so the whole group is rejected and the log stays
// usable. A write or sync failure may leave a torn tail — exactly what
// replay tolerates — and closes the log so nothing is written past it;
// none of the group's records count as acknowledged.
func (l *Log) appendAssigned(recs []Record, sync bool) (uint64, error) {
	if len(recs) == 0 {
		return l.lastSeq, nil
	}
	// Give an oversized scratch buffer back after this group, whatever
	// the exit path; one giant batch must not pin its allocation for the
	// log's lifetime.
	defer func() {
		if cap(l.buf) > maxRetainedBuf {
			l.buf = nil
		}
	}()
	l.buf = l.buf[:0]
	for i := range recs {
		mark := len(l.buf)
		l.buf = encodeFrame(l.buf, &recs[i])
		if len(l.buf)-mark-frameHeaderSize > maxPayload {
			// Replay treats frames past maxPayload as corruption; writing
			// one would acknowledge a batch that destroys itself (and
			// everything after it) on recovery.
			return 0, fmt.Errorf("wal: record payload %d bytes exceeds the %d limit", len(l.buf)-mark-frameHeaderSize, maxPayload)
		}
	}
	if l.active.bytes > 0 && l.active.bytes+int64(len(l.buf)) > l.opts.SegmentBytes {
		// Rotate before the group so it stays contiguous in one segment; a
		// group larger than SegmentBytes overshoots, exactly as a single
		// oversized record always has.
		if err := l.rotateLocked(recs[0].Seq); err != nil {
			return 0, err
		}
	}
	if _, err := l.f.Write(l.buf); err != nil {
		// The span may be partially on disk; a torn frame is exactly what
		// replay tolerates, but this process must not ack or write past it.
		l.closeLocked()
		return 0, err
	}
	l.active.bytes += int64(len(l.buf))
	l.active.last = recs[len(recs)-1].Seq
	l.lastSeq = l.active.last
	l.appends += uint64(len(recs))
	l.dirty = true
	if sync && l.opts.Policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			l.closeLocked()
			return 0, err
		}
	}
	// Wake stream subscribers; capacity-1 channels coalesce bursts.
	for ch := range l.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	return l.lastSeq, nil
}

// rotateLocked seals the active segment (fsyncing it, so sealed segments
// are always fully durable) and starts a new one at first. Under
// Options.Compress the sealed segment is handed to the background
// compressor.
func (l *Log) rotateLocked(first uint64) error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	old := l.f
	sealedFirst := l.active.first
	if err := l.newSegment(first); err != nil {
		return err
	}
	if err := old.Close(); err != nil {
		return err
	}
	if l.opts.Compress {
		l.compressInBackground(sealedFirst)
	}
	return nil
}

// syncLocked fsyncs the active segment if it has unsynced bytes.
func (l *Log) syncLocked() error {
	if !l.dirty || l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.fsyncs++
	return nil
}

// Sync forces an fsync of the active segment, whatever the policy. A
// failed fsync closes the log: records written before it were never
// acknowledged as durable, and nothing may be written past a failed
// durability barrier.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.syncLocked(); err != nil {
		l.closeLocked()
		return err
	}
	return nil
}

// syncLoop is the SyncEvery background syncer.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				l.syncLocked() //nolint:errcheck // next Append surfaces persistent failures
			}
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// Checkpoint records that the store's state through seq is durable outside
// the log (a saved snapshot), then removes every segment holding only
// records at or below seq. The active segment is rotated first so it can
// be removed too once it qualifies. Replay after a checkpoint applies only
// records above seq.
//
// When a retain hook is installed (SetRetain — replication pins history
// for followers still catching up), the checkpoint marker still advances
// to seq, but segment removal is additionally capped below the hook's
// lowest-needed sequence: retained segments replay harmlessly (records at
// or below the marker are skipped) and keep serving stream resumes.
func (l *Log) Checkpoint(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if seq > l.lastSeq {
		return fmt.Errorf("wal: checkpoint seq %d beyond last appended %d", seq, l.lastSeq)
	}
	if seq < l.cpSeq {
		return fmt.Errorf("wal: checkpoint seq %d behind existing checkpoint %d", seq, l.cpSeq)
	}
	// Make everything the checkpoint covers durable before declaring it
	// superseded, then persist the checkpoint marker atomically.
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := writeCheckpoint(filepath.Join(l.dir, checkpointName), seq); err != nil {
		return err
	}
	l.cpSeq = seq
	truncSeq := seq
	if l.retain != nil {
		if need := l.retain(l.lastSeq); need > 0 && need-1 < truncSeq {
			truncSeq = need - 1
		}
	}
	// Rotate a non-empty active segment so fully-covered records don't pin
	// the file open forever.
	if l.active.bytes > 0 && l.active.last <= truncSeq {
		if err := l.rotateLocked(l.lastSeq + 1); err != nil {
			return err
		}
	}
	kept := l.sealed[:0]
	for _, seg := range l.sealed {
		if seg.last <= truncSeq {
			if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				return err
			}
			continue
		}
		kept = append(kept, seg)
	}
	l.sealed = kept
	l.cpCount++
	l.cpTime = time.Now()
	return nil
}

// SetRetain installs (or, with nil, removes) the segment-retention hook:
// a function that, given the log's last appended sequence, returns the
// lowest sequence number some reader still needs (0 = no constraint).
// Checkpoint never removes a segment containing that sequence or
// anything above it. The hook is called with the log's lock held — it
// must not call back into the log (lastSeq is passed in for exactly that
// reason).
func (l *Log) SetRetain(fn func(lastSeq uint64) uint64) {
	l.mu.Lock()
	l.retain = fn
	l.mu.Unlock()
}

// Subscribe registers an append-notification channel: after each
// successful append a token is sent non-blockingly, so a slow receiver
// sees bursts coalesced into one wakeup. The channel is closed when the
// log closes. Callers must Unsubscribe when done.
func (l *Log) Subscribe() <-chan struct{} {
	ch := make(chan struct{}, 1)
	l.mu.Lock()
	if l.closed {
		close(ch)
	} else {
		l.subs[ch] = struct{}{}
	}
	l.mu.Unlock()
	return ch
}

// Unsubscribe removes a channel registered with Subscribe.
func (l *Log) Unsubscribe(ch <-chan struct{}) {
	l.mu.Lock()
	for c := range l.subs {
		if c == ch {
			delete(l.subs, c)
			break
		}
	}
	l.mu.Unlock()
}

// SegmentView snapshots the on-disk segment layout in sequence order
// (the active segment last), plus the last appended and checkpointed
// sequence numbers. The reported Bytes of the active segment is its
// fully-written frame span — concurrent appends only grow it past the
// snapshot, never invalidate it — so readers may safely consume exactly
// Bytes bytes of that file.
func (l *Log) SegmentView() (segs []SegmentInfo, lastSeq, cpSeq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs = make([]SegmentInfo, 0, len(l.sealed)+1)
	for _, s := range l.sealed {
		segs = append(segs, SegmentInfo{Path: s.path, First: s.first, Last: s.last, Bytes: s.bytes, Compressed: s.compressed})
	}
	segs = append(segs, SegmentInfo{
		Path: l.active.path, First: l.active.first, Last: l.active.last,
		Bytes: l.active.bytes, Active: true,
	})
	return segs, l.lastSeq, l.cpSeq
}

// LastSeq returns the sequence number of the most recent record.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	policy := l.opts.Policy.String()
	if l.opts.Policy == SyncEvery {
		policy = "interval=" + l.opts.Interval.String()
	}
	st := Stats{
		Dir:            l.dir,
		Policy:         policy,
		LastSeq:        l.lastSeq,
		CheckpointSeq:  l.cpSeq,
		Appends:        l.appends,
		Fsyncs:         l.fsyncs,
		Replayed:       l.replayed,
		Checkpoints:    l.cpCount,
		LastCheckpoint: l.cpTime,
	}
	for _, seg := range l.sealed {
		st.Bytes += seg.bytes
	}
	st.Bytes += l.active.bytes
	st.Segments = len(l.sealed) + 1
	return st
}

// closeLocked tears down the file handle and stops the background syncer
// (l.stop is never reassigned, so closing it here is race-free with the
// loop's select); caller holds mu. Idempotent via l.closed.
func (l *Log) closeLocked() {
	if l.closed {
		return
	}
	l.closed = true
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	if l.lockf != nil {
		// Closing the descriptor releases the flock, freeing the directory
		// for a successor (e.g. a server reload).
		l.lockf.Close()
		l.lockf = nil
	}
	if l.stop != nil {
		close(l.stop)
	}
	for ch := range l.subs {
		close(ch)
		delete(l.subs, ch)
	}
}

// Close fsyncs and closes the log, waiting for the background syncer (if
// any) to exit — including when an earlier Append/Sync failure already
// closed the files internally. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	var err error
	if !l.closed {
		err = l.syncLocked()
		l.closeLocked()
	}
	done := l.done
	l.mu.Unlock()
	if done != nil {
		<-done
	}
	l.compressWG.Wait()
	return err
}

// ---- checkpoint file ----------------------------------------------------

// The checkpoint file is one line "amber-wal v1 <seq> <crc32c-of-seq>\n",
// written to a temp file and renamed into place so it is atomically either
// the old or the new checkpoint. A corrupt file is an error — replaying
// below a real checkpoint could resurrect pre-CLEAR state, so guessing is
// worse than refusing.

// WriteCheckpointFile writes dir's checkpoint marker directly, for
// callers bootstrapping a log directory from a replicated snapshot: a
// subsequent Open starts with lastSeq = seq and replays nothing below it.
// The directory must not have an open log.
func WriteCheckpointFile(dir string, seq uint64) error {
	return writeCheckpoint(filepath.Join(dir, checkpointName), seq)
}

// CheckpointSeq returns the sequence recorded in dir's checkpoint file
// (0 if none), without opening the log.
func CheckpointSeq(dir string) (uint64, error) {
	return readCheckpoint(filepath.Join(dir, checkpointName))
}

func writeCheckpoint(path string, seq uint64) error {
	body := strconv.FormatUint(seq, 10)
	line := fmt.Sprintf("amber-wal v1 %s %08x\n", body, crc32.Checksum([]byte(body), crcTable))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(f, line); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(path))
}

func readCheckpoint(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(string(data))
	if len(fields) != 4 || fields[0] != "amber-wal" || fields[1] != "v1" {
		return 0, fmt.Errorf("wal: malformed checkpoint file %s", path)
	}
	seq, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("wal: malformed checkpoint seq in %s: %w", path, err)
	}
	crc, err := strconv.ParseUint(fields[3], 16, 32)
	if err != nil || uint32(crc) != crc32.Checksum([]byte(fields[2]), crcTable) {
		return 0, fmt.Errorf("wal: checkpoint file %s fails its checksum", path)
	}
	return seq, nil
}

// SyncDir fsyncs a directory so renames and removals inside it are
// durable. Best-effort on platforms where directories cannot be synced.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

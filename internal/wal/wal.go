// Package wal implements the write-ahead log behind AMbER's crash-safe
// live updates: an append-only, segmented log of update batches with
// length+CRC32-C-framed records, a configurable fsync policy, replay on
// open, and checkpoint-driven truncation.
//
// Layout: a log directory holds segment files named wal-<firstseq>.seg
// (sixteen hex digits, so lexical order is sequence order) plus an
// optional `checkpoint` file recording the sequence number up to which
// the store's state is durable elsewhere (a checkpointed snapshot).
// Records carry a log sequence number that increases monotonically across
// restarts; replay applies, in order, exactly the records with a sequence
// above the checkpoint.
//
// Torn writes: a crash can leave a partially written frame at the log
// tail. Replay validates each frame's length and checksum and stops at
// the first bad one — the surviving records are a prefix of the
// acknowledged history, which is the strongest guarantee an append-only
// log can give. Open truncates the torn tail (and discards any later
// segments, which can only exist after mid-log corruption) so appending
// resumes from a clean boundary.
//
// Durability policy: SyncAlways fsyncs before Append returns (no
// acknowledged record is ever lost, at one fsync per batch); SyncEvery
// fsyncs in the background at a fixed interval (a crash loses at most the
// last interval); SyncNever leaves syncing to the OS page cache. Every
// policy writes frames straight through to the file — there is no
// user-space buffer — so even SyncNever survives a process kill; only an
// OS crash can lose unsynced records.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs before every Append returns (the default).
	SyncAlways SyncPolicy = iota
	// SyncEvery fsyncs at a fixed interval in the background.
	SyncEvery
	// SyncNever never fsyncs explicitly; the OS flushes when it pleases.
	SyncNever
)

// String renders the policy in the -fsync flag syntax.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncEvery:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
	}
}

// ParseSyncPolicy parses the -fsync flag syntax: "always", "never", or
// "interval=<duration>" (e.g. "interval=100ms"). The empty string means
// SyncAlways.
func ParseSyncPolicy(s string) (SyncPolicy, time.Duration, error) {
	switch {
	case s == "" || s == "always":
		return SyncAlways, 0, nil
	case s == "never":
		return SyncNever, 0, nil
	case strings.HasPrefix(s, "interval="):
		d, err := time.ParseDuration(strings.TrimPrefix(s, "interval="))
		if err != nil || d <= 0 {
			return 0, 0, fmt.Errorf("wal: bad fsync interval %q", s)
		}
		return SyncEvery, d, nil
	default:
		return 0, 0, fmt.Errorf("wal: unknown fsync policy %q (use always, never or interval=<duration>)", s)
	}
}

// Options tune a log. The zero value selects the documented defaults.
type Options struct {
	// Policy is the fsync policy; default SyncAlways.
	Policy SyncPolicy
	// Interval is the background fsync period for SyncEvery; default 1s.
	Interval time.Duration
	// SegmentBytes rotates to a fresh segment once the active one exceeds
	// this size; default 16 MiB.
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	return o
}

// Stats is a point-in-time description of the log, the quantities the
// server's /stats durability section reports.
type Stats struct {
	// Dir is the log directory.
	Dir string
	// Policy renders the effective fsync policy ("always", "never",
	// "interval=<d>").
	Policy string
	// Bytes is the total size of all segment files; Segments their count
	// (including the active one).
	Bytes    int64
	Segments int
	// LastSeq is the sequence number of the most recent record (0 when
	// the log has never held one); CheckpointSeq the sequence up to which
	// records have been truncated away.
	LastSeq       uint64
	CheckpointSeq uint64
	// Appends and Fsyncs count operations since the log was opened.
	Appends uint64
	Fsyncs  uint64
	// Replayed is the number of records replayed when the log was opened.
	Replayed int
	// Checkpoints counts Checkpoint calls since open; LastCheckpoint is
	// the wall-clock time of the most recent one (zero if none ran).
	Checkpoints    uint64
	LastCheckpoint time.Time
}

// segment is one on-disk log file.
type segment struct {
	path  string
	first uint64 // sequence of its first record
	last  uint64 // sequence of its last record (0 while empty)
	bytes int64
}

const (
	segPrefix      = "wal-"
	segSuffix      = ".seg"
	checkpointName = "checkpoint"
	lockName       = "LOCK"
)

// maxRetainedBuf caps the scratch encoding buffer kept between appends;
// a one-off giant batch must not pin its allocation for the log's life.
const maxRetainedBuf = 1 << 20

func segName(first uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hex) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use; Append calls are serialized internally (callers typically hold
// their own writer lock anyway).
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	lockf    *os.File  // flock'd LOCK file guarding the directory
	f        *os.File  // active segment
	active   segment   // active segment metadata
	sealed   []segment // earlier segments, in sequence order
	lastSeq  uint64
	cpSeq    uint64
	dirty    bool // bytes written since the last fsync
	closed   bool
	appends  uint64
	fsyncs   uint64
	cpCount  uint64
	cpTime   time.Time
	replayed int
	buf      []byte // scratch frame-encoding buffer

	stop chan struct{} // interval syncer shutdown; nil unless SyncEvery
	done chan struct{}
}

// Open opens (creating if necessary) the log in dir, replays every record
// above the checkpoint through apply in sequence order, truncates any torn
// tail, and leaves the log ready for appending. A nil apply skips replay
// delivery but still scans (the scan is what finds the last sequence and
// the torn tail). An apply error aborts the open.
func Open(dir string, opts Options, apply func(Record) error) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// One writer per directory: two logs appending to the same segments
	// would interleave frames and sequence numbers, and the next replay
	// would silently truncate at the first inconsistency — acknowledged
	// writes from both would vanish. The kernel drops the lock when the
	// holder dies, so crashes never wedge the directory.
	lockf, err := os.OpenFile(filepath.Join(dir, lockName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := lockFile(lockf); err != nil {
		lockf.Close()
		return nil, fmt.Errorf("wal: directory %s is already in use by another log: %w", dir, err)
	}
	l, err := openLocked(dir, opts, apply)
	if err != nil {
		lockf.Close()
		return nil, err
	}
	l.lockf = lockf
	if opts.Policy == SyncEvery {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

// openLocked is the body of Open, run while holding the directory lock.
func openLocked(dir string, opts Options, apply func(Record) error) (*Log, error) {
	l := &Log{dir: dir, opts: opts}
	cpSeq, err := readCheckpoint(filepath.Join(dir, checkpointName))
	if err != nil {
		return nil, err
	}
	l.cpSeq = cpSeq
	l.lastSeq = cpSeq

	names, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	// Scan segments in order, replaying valid records. The first bad frame
	// ends the valid prefix: its segment is truncated there and every
	// later segment is dropped (they can only hold post-corruption data).
	// prev enforces strictly increasing sequences across the whole log,
	// not just within one segment — a stale or restored-from-backup
	// segment must not replay duplicate or out-of-order records.
	corrupted := false
	var prev uint64
	for _, name := range names {
		path := filepath.Join(dir, name)
		if corrupted {
			if err := os.Remove(path); err != nil {
				return nil, err
			}
			continue
		}
		first, _ := parseSegName(name)
		seg := segment{path: path, first: first}
		validEnd, last, n, scanErr := l.scanSegment(path, &prev, apply)
		if scanErr != nil {
			return nil, scanErr
		}
		seg.bytes = validEnd
		seg.last = last
		info, statErr := os.Stat(path)
		if statErr != nil {
			return nil, statErr
		}
		if info.Size() > validEnd {
			// Torn or corrupt tail: cut it so appends resume cleanly.
			if err := os.Truncate(path, validEnd); err != nil {
				return nil, err
			}
			corrupted = true
		}
		l.replayed += n
		l.sealed = append(l.sealed, seg)
	}

	// The newest scanned segment becomes the active one; with none (fresh
	// log, or everything checkpointed away) a new segment starts at
	// lastSeq+1.
	if n := len(l.sealed); n > 0 {
		l.active = l.sealed[n-1]
		l.sealed = l.sealed[:n-1]
		l.f, err = os.OpenFile(l.active.path, os.O_WRONLY|os.O_APPEND, 0o644)
	} else {
		err = l.newSegment(l.lastSeq + 1)
	}
	if err != nil {
		return nil, err
	}
	return l, nil
}

// scanSegment replays path's valid records, returning the byte offset of
// the end of the last valid frame, the sequence of the last valid record
// (0 if none), and how many records were delivered to apply. prev is the
// cross-segment sequence cursor: records must continue strictly above it.
func (l *Log) scanSegment(path string, prev *uint64, apply func(Record) error) (int64, uint64, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, 0, err
	}
	var off int64
	var last uint64
	applied := 0
	for int64(len(data))-off >= frameHeaderSize {
		n := int64(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if n > maxPayload || off+frameHeaderSize+n > int64(len(data)) {
			break
		}
		payload := data[off+frameHeaderSize : off+frameHeaderSize+n]
		if crc32.Checksum(payload, crcTable) != crc {
			break
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			break
		}
		if rec.Seq <= *prev {
			break // sequences must strictly increase across the whole log
		}
		off += frameHeaderSize + n
		last = rec.Seq
		*prev = rec.Seq
		if rec.Seq > l.lastSeq {
			l.lastSeq = rec.Seq
		}
		if rec.Seq > l.cpSeq && apply != nil {
			if aerr := apply(rec); aerr != nil {
				return 0, 0, 0, fmt.Errorf("wal: replaying record %d: %w", rec.Seq, aerr)
			}
			applied++
		}
	}
	return off, last, applied, nil
}

// listSegments returns segment file names in sequence order.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := parseSegName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // fixed-width hex: lexical order == numeric order
	return names, nil
}

// newSegment creates and activates a fresh segment whose first record
// will carry sequence first. Caller holds mu (or is Open, pre-publish).
func (l *Log) newSegment(first uint64) error {
	path := filepath.Join(l.dir, segName(first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if l.f != nil {
		l.sealed = append(l.sealed, l.active)
	}
	l.f = f
	l.active = segment{path: path, first: first}
	return nil
}

// Append assigns the next sequence number to rec, writes its frame, and
// — under SyncAlways — fsyncs before returning. The record is part of the
// durable history from the moment Append returns.
func (l *Log) Append(rec Record) (uint64, error) {
	return l.AppendBatch([]Record{rec})
}

// AppendBatch is the group-commit append: it assigns consecutive
// sequence numbers to recs (in place), encodes every frame into one
// contiguous span, writes the span with a single write, and — under
// SyncAlways — issues one fsync for the whole group before returning,
// amortizing the durability cost across the group. It returns the last
// assigned sequence number.
//
// Failure atomicity: an oversized record is detected before any byte
// reaches the file, so the whole group is rejected and the log stays
// usable. A write or sync failure may leave a torn tail — exactly what
// replay tolerates — and closes the log so nothing is written past it;
// none of the group's records count as acknowledged.
func (l *Log) AppendBatch(recs []Record) (uint64, error) {
	return l.appendBatch(recs, true)
}

// AppendBatchNoSync appends like AppendBatch but skips the SyncAlways
// fsync: the caller takes over the durability barrier — group commit
// overlaps the fsync with applying the group — and must call Sync
// before acknowledging any record of the batch. Under other policies it
// is identical to AppendBatch.
func (l *Log) AppendBatchNoSync(recs []Record) (uint64, error) {
	return l.appendBatch(recs, false)
}

func (l *Log) appendBatch(recs []Record, sync bool) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if len(recs) == 0 {
		return l.lastSeq, nil
	}
	// Give an oversized scratch buffer back after this group, whatever
	// the exit path; one giant batch must not pin its allocation for the
	// log's lifetime.
	defer func() {
		if cap(l.buf) > maxRetainedBuf {
			l.buf = nil
		}
	}()
	l.buf = l.buf[:0]
	for i := range recs {
		recs[i].Seq = l.lastSeq + 1 + uint64(i)
		mark := len(l.buf)
		l.buf = encodeFrame(l.buf, &recs[i])
		if len(l.buf)-mark-frameHeaderSize > maxPayload {
			// Replay treats frames past maxPayload as corruption; writing
			// one would acknowledge a batch that destroys itself (and
			// everything after it) on recovery.
			return 0, fmt.Errorf("wal: record payload %d bytes exceeds the %d limit", len(l.buf)-mark-frameHeaderSize, maxPayload)
		}
	}
	if l.active.bytes > 0 && l.active.bytes+int64(len(l.buf)) > l.opts.SegmentBytes {
		// Rotate before the group so it stays contiguous in one segment; a
		// group larger than SegmentBytes overshoots, exactly as a single
		// oversized record always has.
		if err := l.rotateLocked(recs[0].Seq); err != nil {
			return 0, err
		}
	}
	if _, err := l.f.Write(l.buf); err != nil {
		// The span may be partially on disk; a torn frame is exactly what
		// replay tolerates, but this process must not ack or write past it.
		l.closeLocked()
		return 0, err
	}
	l.active.bytes += int64(len(l.buf))
	l.active.last = recs[len(recs)-1].Seq
	l.lastSeq = l.active.last
	l.appends += uint64(len(recs))
	l.dirty = true
	if sync && l.opts.Policy == SyncAlways {
		if err := l.syncLocked(); err != nil {
			l.closeLocked()
			return 0, err
		}
	}
	return l.lastSeq, nil
}

// rotateLocked seals the active segment (fsyncing it, so sealed segments
// are always fully durable) and starts a new one at first.
func (l *Log) rotateLocked(first uint64) error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	old := l.f
	if err := l.newSegment(first); err != nil {
		return err
	}
	return old.Close()
}

// syncLocked fsyncs the active segment if it has unsynced bytes.
func (l *Log) syncLocked() error {
	if !l.dirty || l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.fsyncs++
	return nil
}

// Sync forces an fsync of the active segment, whatever the policy. A
// failed fsync closes the log: records written before it were never
// acknowledged as durable, and nothing may be written past a failed
// durability barrier.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.syncLocked(); err != nil {
		l.closeLocked()
		return err
	}
	return nil
}

// syncLoop is the SyncEvery background syncer.
func (l *Log) syncLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed {
				l.syncLocked() //nolint:errcheck // next Append surfaces persistent failures
			}
			l.mu.Unlock()
		case <-l.stop:
			return
		}
	}
}

// Checkpoint records that the store's state through seq is durable outside
// the log (a saved snapshot), then removes every segment holding only
// records at or below seq. The active segment is rotated first so it can
// be removed too once it qualifies. Replay after a checkpoint applies only
// records above seq.
func (l *Log) Checkpoint(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if seq > l.lastSeq {
		return fmt.Errorf("wal: checkpoint seq %d beyond last appended %d", seq, l.lastSeq)
	}
	if seq < l.cpSeq {
		return fmt.Errorf("wal: checkpoint seq %d behind existing checkpoint %d", seq, l.cpSeq)
	}
	// Make everything the checkpoint covers durable before declaring it
	// superseded, then persist the checkpoint marker atomically.
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := writeCheckpoint(filepath.Join(l.dir, checkpointName), seq); err != nil {
		return err
	}
	l.cpSeq = seq
	// Rotate a non-empty active segment so fully-covered records don't pin
	// the file open forever.
	if l.active.bytes > 0 && l.active.last <= seq {
		if err := l.rotateLocked(l.lastSeq + 1); err != nil {
			return err
		}
	}
	kept := l.sealed[:0]
	for _, seg := range l.sealed {
		if seg.last <= seq {
			if err := os.Remove(seg.path); err != nil && !os.IsNotExist(err) {
				return err
			}
			continue
		}
		kept = append(kept, seg)
	}
	l.sealed = kept
	l.cpCount++
	l.cpTime = time.Now()
	return nil
}

// LastSeq returns the sequence number of the most recent record.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	policy := l.opts.Policy.String()
	if l.opts.Policy == SyncEvery {
		policy = "interval=" + l.opts.Interval.String()
	}
	st := Stats{
		Dir:            l.dir,
		Policy:         policy,
		LastSeq:        l.lastSeq,
		CheckpointSeq:  l.cpSeq,
		Appends:        l.appends,
		Fsyncs:         l.fsyncs,
		Replayed:       l.replayed,
		Checkpoints:    l.cpCount,
		LastCheckpoint: l.cpTime,
	}
	for _, seg := range l.sealed {
		st.Bytes += seg.bytes
	}
	st.Bytes += l.active.bytes
	st.Segments = len(l.sealed) + 1
	return st
}

// closeLocked tears down the file handle and stops the background syncer
// (l.stop is never reassigned, so closing it here is race-free with the
// loop's select); caller holds mu. Idempotent via l.closed.
func (l *Log) closeLocked() {
	if l.closed {
		return
	}
	l.closed = true
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	if l.lockf != nil {
		// Closing the descriptor releases the flock, freeing the directory
		// for a successor (e.g. a server reload).
		l.lockf.Close()
		l.lockf = nil
	}
	if l.stop != nil {
		close(l.stop)
	}
}

// Close fsyncs and closes the log, waiting for the background syncer (if
// any) to exit — including when an earlier Append/Sync failure already
// closed the files internally. Further operations return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	var err error
	if !l.closed {
		err = l.syncLocked()
		l.closeLocked()
	}
	done := l.done
	l.mu.Unlock()
	if done != nil {
		<-done
	}
	return err
}

// ---- checkpoint file ----------------------------------------------------

// The checkpoint file is one line "amber-wal v1 <seq> <crc32c-of-seq>\n",
// written to a temp file and renamed into place so it is atomically either
// the old or the new checkpoint. A corrupt file is an error — replaying
// below a real checkpoint could resurrect pre-CLEAR state, so guessing is
// worse than refusing.

func writeCheckpoint(path string, seq uint64) error {
	body := strconv.FormatUint(seq, 10)
	line := fmt.Sprintf("amber-wal v1 %s %08x\n", body, crc32.Checksum([]byte(body), crcTable))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(f, line); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(path))
}

func readCheckpoint(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	fields := strings.Fields(string(data))
	if len(fields) != 4 || fields[0] != "amber-wal" || fields[1] != "v1" {
		return 0, fmt.Errorf("wal: malformed checkpoint file %s", path)
	}
	seq, err := strconv.ParseUint(fields[2], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("wal: malformed checkpoint seq in %s: %w", path, err)
	}
	crc, err := strconv.ParseUint(fields[3], 16, 32)
	if err != nil || uint32(crc) != crc32.Checksum([]byte(fields[2]), crcTable) {
		return 0, fmt.Errorf("wal: checkpoint file %s fails its checksum", path)
	}
	return seq, nil
}

// SyncDir fsyncs a directory so renames and removals inside it are
// durable. Best-effort on platforms where directories cannot be synced.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

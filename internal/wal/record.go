package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/rdf"
)

// Kind discriminates the logged operations.
type Kind uint8

const (
	// KindMutation is one applied write batch: dels removed, adds inserted.
	KindMutation Kind = 1
	// KindClear wipes the store to an empty generation (SPARQL CLEAR).
	KindClear Kind = 2
)

// String reports the kind name, for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindMutation:
		return "mutation"
	case KindClear:
		return "clear"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one logged operation. Seq is the log sequence number: assigned
// by Append, monotonically increasing across restarts, never reused. Epoch
// is the store's data version after the operation applied — informational,
// for diagnostics and tests; replay ordering relies on Seq alone.
type Record struct {
	Seq   uint64
	Epoch uint64
	Kind  Kind
	// Adds and Dels are the batch for KindMutation; both empty for
	// KindClear.
	Adds, Dels []rdf.Triple
}

// crcTable is the Castagnoli polynomial, the standard choice for storage
// checksums (hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is the fixed per-record framing overhead: a 4-byte
// little-endian payload length followed by a 4-byte CRC32-C of the payload.
const frameHeaderSize = 8

// maxPayload bounds a single record's encoded payload. Anything larger in
// a frame header is treated as corruption, so a torn length field cannot
// make replay attempt a gigantic allocation.
const maxPayload = 1 << 30

// appendTerm encodes a term value as uvarint length + bytes.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Object term codes. The original format used rdf.TermKind directly
// (0 = IRI, 1 = plain literal); the typed-term codes extend it without
// breaking replay of logs written before datatypes and language tags were
// carried: old records use only codes 0 and 1, and the new encoder still
// emits exactly those bytes for IRIs and plain literals.
const (
	objIRI     = 0 // value
	objLiteral = 1 // lexical form, plain (xsd:string)
	objTyped   = 2 // lexical form + datatype IRI
	objLang    = 3 // lexical form + language tag
	objBlank   = 4 // blank label (with "_:" prefix)
)

// appendTriple encodes S (IRI or blank label), P (IRI value), then O as a
// kind code plus value (plus the datatype or language tag for typed
// literals). Subjects are resources by construction (mutations are
// validated before logging), and blank labels are self-describing via
// their "_:" prefix, so S and P need no kind code.
func appendTriple(buf []byte, t rdf.Triple) []byte {
	buf = appendString(buf, t.S.Value)
	buf = appendString(buf, t.P.Value)
	switch {
	case t.O.Kind == rdf.Blank:
		buf = append(buf, objBlank)
		return appendString(buf, t.O.Value)
	case t.O.Kind == rdf.Literal && t.O.Lang != "":
		buf = append(buf, objLang)
		buf = appendString(buf, t.O.Value)
		return appendString(buf, t.O.Lang)
	case t.O.Kind == rdf.Literal && t.O.Datatype != "":
		buf = append(buf, objTyped)
		buf = appendString(buf, t.O.Value)
		return appendString(buf, t.O.Datatype)
	case t.O.Kind == rdf.Literal:
		buf = append(buf, objLiteral)
		return appendString(buf, t.O.Value)
	default:
		buf = append(buf, objIRI)
		return appendString(buf, t.O.Value)
	}
}

// encodePayload renders the record payload (everything inside the frame):
// kind, seq, epoch, then the two triple lists.
func encodePayload(buf []byte, r *Record) []byte {
	buf = append(buf, byte(r.Kind))
	buf = binary.AppendUvarint(buf, r.Seq)
	buf = binary.AppendUvarint(buf, r.Epoch)
	buf = binary.AppendUvarint(buf, uint64(len(r.Adds)))
	for _, t := range r.Adds {
		buf = appendTriple(buf, t)
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Dels)))
	for _, t := range r.Dels {
		buf = appendTriple(buf, t)
	}
	return buf
}

// FrameHeaderSize is the exported framing overhead, for readers that
// walk raw frame bytes (the replication stream ships frames verbatim).
const FrameHeaderSize = frameHeaderSize

// DecodeFrame parses the frame at the start of b, validating its length
// bound and CRC32-C, and returns the decoded record plus the frame's
// total byte length. Any torn, truncated, or corrupt frame is an error —
// callers treat it as the end of the valid prefix (replay) or as a
// damaged transfer to retry (replication).
func DecodeFrame(b []byte) (Record, int, error) {
	if len(b) < frameHeaderSize {
		return Record{}, 0, fmt.Errorf("wal: truncated frame header (%d bytes)", len(b))
	}
	n := int64(binary.LittleEndian.Uint32(b))
	crc := binary.LittleEndian.Uint32(b[4:])
	if n > maxPayload || frameHeaderSize+n > int64(len(b)) {
		return Record{}, 0, fmt.Errorf("wal: frame length %d exceeds available %d bytes", n, len(b))
	}
	payload := b[frameHeaderSize : frameHeaderSize+n]
	if crc32.Checksum(payload, crcTable) != crc {
		return Record{}, 0, fmt.Errorf("wal: frame checksum mismatch")
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frameHeaderSize + int(n), nil
}

// EncodeFrame appends rec's full frame (length, CRC32-C, payload) to buf
// and returns the extended slice — the wire encoding the replication
// stream and the on-disk segments share.
func EncodeFrame(buf []byte, rec *Record) []byte {
	return encodeFrame(buf, rec)
}

// encodeFrame renders the full frame: length, CRC32-C, payload.
func encodeFrame(buf []byte, r *Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = encodePayload(buf, r)
	payload := buf[start+frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf
}

// byteReader walks an in-memory payload.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (r *byteReader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("wal: %s at payload offset %d", msg, r.off)
	}
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated byte")
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *byteReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("string length past payload end")
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *byteReader) triple() rdf.Triple {
	s := r.str()
	p := r.str()
	code := r.byte()
	var o rdf.Term
	switch code {
	case objIRI:
		o = rdf.NewIRI(r.str())
	case objLiteral:
		o = rdf.NewLiteral(r.str())
	case objTyped:
		lex := r.str()
		o = rdf.NewTypedLiteral(lex, r.str())
	case objLang:
		lex := r.str()
		o = rdf.NewLangLiteral(lex, r.str())
	case objBlank:
		o = rdf.NewResource(r.str())
	default:
		r.fail("bad object term kind")
		return rdf.Triple{}
	}
	if r.err != nil {
		return rdf.Triple{}
	}
	return rdf.Triple{S: rdf.NewResource(s), P: rdf.NewIRI(p), O: o}
}

// decodePayload parses one record payload. It returns an error on any
// malformed content; the caller treats that as the end of the valid prefix.
func decodePayload(payload []byte) (Record, error) {
	r := byteReader{b: payload}
	rec := Record{Kind: Kind(r.byte())}
	if rec.Kind != KindMutation && rec.Kind != KindClear {
		return rec, fmt.Errorf("wal: unknown record kind %d", rec.Kind)
	}
	rec.Seq = r.uvarint()
	rec.Epoch = r.uvarint()
	nAdds := r.uvarint()
	if r.err != nil {
		return rec, r.err
	}
	if nAdds > uint64(len(payload)) {
		return rec, fmt.Errorf("wal: add count %d exceeds payload", nAdds)
	}
	if nAdds > 0 {
		rec.Adds = make([]rdf.Triple, 0, nAdds)
	}
	for i := uint64(0); i < nAdds; i++ {
		rec.Adds = append(rec.Adds, r.triple())
		if r.err != nil {
			return rec, r.err
		}
	}
	nDels := r.uvarint()
	if r.err != nil {
		return rec, r.err
	}
	if nDels > uint64(len(payload)) {
		return rec, fmt.Errorf("wal: del count %d exceeds payload", nDels)
	}
	if nDels > 0 {
		rec.Dels = make([]rdf.Triple, 0, nDels)
	}
	for i := uint64(0); i < nDels; i++ {
		rec.Dels = append(rec.Dels, r.triple())
		if r.err != nil {
			return rec, r.err
		}
	}
	if r.off != len(payload) {
		return rec, fmt.Errorf("wal: %d trailing payload bytes", len(payload)-r.off)
	}
	return rec, nil
}

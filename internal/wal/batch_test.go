package wal

import (
	"testing"

	"repro/internal/rdf"
)

// TestAppendBatchSeqsAndReplay: a batch gets consecutive sequence
// numbers, returns the last, and replays in order — interleaved with
// single appends, which are one-record batches.
func TestAppendBatchSeqsAndReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{})
	batch := []Record{mut(0), mut(1), mut(2)}
	last, err := l.AppendBatch(batch)
	if err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	if last != 3 {
		t.Fatalf("AppendBatch returned seq %d, want 3", last)
	}
	for i, r := range batch {
		if r.Seq != uint64(i+1) {
			t.Errorf("batch record %d assigned seq %d, want %d", i, r.Seq, i+1)
		}
	}
	if seq, err := l.Append(mut(3)); err != nil || seq != 4 {
		t.Fatalf("Append after batch: seq=%d err=%v", seq, err)
	}
	if last, err = l.AppendBatch([]Record{mut(4), mut(5)}); err != nil || last != 6 {
		t.Fatalf("second AppendBatch: seq=%d err=%v", last, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openCollect(t, dir, Options{})
	defer l2.Close()
	if len(got) != 6 {
		t.Fatalf("replayed %d records, want 6", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Errorf("replayed record %d has seq %d", i, r.Seq)
		}
	}
}

// TestAppendBatchSingleFsync: under fsync=always a whole batch costs one
// fsync, not one per record — the amortization group commit buys.
func TestAppendBatchSingleFsync(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{Policy: SyncAlways})
	defer l.Close()
	batch := make([]Record, 8)
	for i := range batch {
		batch[i] = mut(i)
	}
	if _, err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != 8 {
		t.Errorf("Appends = %d, want 8", st.Appends)
	}
	if st.Fsyncs != 1 {
		t.Errorf("Fsyncs = %d, want 1 for one batch", st.Fsyncs)
	}
}

// TestAppendBatchEmpty: an empty batch is a no-op that reports the
// current last sequence.
func TestAppendBatchEmpty(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{})
	defer l.Close()
	if seq, err := l.AppendBatch(nil); err != nil || seq != 0 {
		t.Fatalf("empty batch on fresh log: seq=%d err=%v", seq, err)
	}
	if _, err := l.Append(mut(0)); err != nil {
		t.Fatal(err)
	}
	if seq, err := l.AppendBatch(nil); err != nil || seq != 1 {
		t.Fatalf("empty batch after append: seq=%d err=%v", seq, err)
	}
}

// TestAppendBatchOversizedRejectsWholeGroup: if any record in a batch
// exceeds the payload limit, the whole group is refused before a byte
// reaches the file, and the log stays usable.
func TestAppendBatchOversizedRejectsWholeGroup(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates >1GiB")
	}
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{Policy: SyncNever})
	huge := Record{Kind: KindMutation, Adds: []rdf.Triple{{
		S: rdf.NewIRI("http://x/s"),
		P: rdf.NewIRI("http://x/p"),
		O: rdf.NewLiteral(string(make([]byte, maxPayload))),
	}}}
	if _, err := l.AppendBatch([]Record{mut(0), huge, mut(1)}); err == nil {
		t.Fatal("batch with oversized record acknowledged")
	}
	// Nothing from the rejected group may survive: the next append gets
	// seq 1 and is the only record on replay.
	if seq, err := l.Append(mut(2)); err != nil || seq != 1 {
		t.Fatalf("append after reject: seq=%d err=%v", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openCollect(t, dir, Options{})
	defer l2.Close()
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("replay after rejected batch: %d records", len(got))
	}
}

// TestAppendBatchRotatesBeforeGroup: a group that would overflow the
// active segment rotates first, so the group stays contiguous in one
// segment and every record survives replay.
func TestAppendBatchRotatesBeforeGroup(t *testing.T) {
	dir := t.TempDir()
	l, _ := openCollect(t, dir, Options{SegmentBytes: 256, Policy: SyncNever})
	total := 0
	for i := 0; i < 10; i++ {
		if _, err := l.AppendBatch([]Record{mut(total), mut(total + 1), mut(total + 2)}); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		total += 3
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, got := openCollect(t, dir, Options{SegmentBytes: 256})
	defer l2.Close()
	if len(got) != total {
		t.Fatalf("replayed %d records, want %d", len(got), total)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("replay out of order at %d: seq %d", i, r.Seq)
		}
	}
}

package index

import (
	"math/rand"
	"testing"

	"repro/internal/dict"
	"repro/internal/multigraph"
	"repro/internal/rdf"
)

const figure1 = `
@prefix x: <http://dbpedia.org/resource/> .
@prefix y: <http://dbpedia.org/ontology/> .
x:London y:isPartOf x:England .
x:England y:hasCapital x:London .
x:Christopher_Nolan y:wasBornIn x:London .
x:Christopher_Nolan y:livedIn x:England .
x:Christopher_Nolan y:isPartOf x:Dark_Knight_Trilogy .
x:London y:hasStadium x:WembleyStadium .
x:WembleyStadium y:hasCapacityOf "90000" .
x:Amy_Winehouse y:wasBornIn x:London .
x:Amy_Winehouse y:diedIn x:London .
x:Amy_Winehouse y:wasPartOf x:Music_Band .
x:Music_Band y:hasName "MCA_Band" .
x:Music_Band y:foundedIn "1994" .
x:Music_Band y:wasFormedIn x:London .
x:Amy_Winehouse y:livedIn x:United_States .
x:Amy_Winehouse y:wasMarriedTo x:Blake_Fielder-Civil .
x:Blake_Fielder-Civil y:livedIn x:United_States .
`

func buildAll(t *testing.T) (*multigraph.Graph, *Index) {
	t.Helper()
	triples, err := rdf.ParseString(figure1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := multigraph.FromTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	return g, Build(g)
}

func lookupV(t *testing.T, g *multigraph.Graph, local string) dict.VertexID {
	t.Helper()
	v, ok := g.Dicts.LookupVertex("http://dbpedia.org/resource/" + local)
	if !ok {
		t.Fatalf("vertex %q missing", local)
	}
	return v
}

func lookupT(t *testing.T, g *multigraph.Graph, pred string) dict.EdgeType {
	t.Helper()
	e, ok := g.Dicts.LookupEdgeType("http://dbpedia.org/ontology/" + pred)
	if !ok {
		t.Fatalf("edge type %q missing", pred)
	}
	return e
}

func TestAttributeIndexSingle(t *testing.T) {
	g, ix := buildAll(t)
	a, ok := g.Dicts.LookupAttr("http://dbpedia.org/ontology/hasCapacityOf", rdf.NewLiteral("90000"))
	if !ok {
		t.Fatal("attribute missing")
	}
	got := ix.A.Candidates([]dict.AttrID{a})
	want := lookupV(t, g, "WembleyStadium")
	if len(got) != 1 || got[0] != want {
		t.Errorf("Candidates(hasCapacityOf 90000) = %v, want [%d]", got, want)
	}
}

// TestAttributeIndexConjunction reproduces the paper's u5 example: the
// attribute set {a1, a2} (foundedIn 1994, hasName MCA_Band) selects exactly
// Music_Band.
func TestAttributeIndexConjunction(t *testing.T) {
	g, ix := buildAll(t)
	a1, ok1 := g.Dicts.LookupAttr("http://dbpedia.org/ontology/foundedIn", rdf.NewLiteral("1994"))
	a2, ok2 := g.Dicts.LookupAttr("http://dbpedia.org/ontology/hasName", rdf.NewLiteral("MCA_Band"))
	if !ok1 || !ok2 {
		t.Fatal("attributes missing")
	}
	got := ix.A.Candidates([]dict.AttrID{a1, a2})
	want := lookupV(t, g, "Music_Band")
	if len(got) != 1 || got[0] != want {
		t.Errorf("Candidates({a1,a2}) = %v, want [%d]", got, want)
	}
	// Conjunction with a foreign attribute must be empty.
	a0, _ := g.Dicts.LookupAttr("http://dbpedia.org/ontology/hasCapacityOf", rdf.NewLiteral("90000"))
	if got := ix.A.Candidates([]dict.AttrID{a1, a0}); got != nil {
		t.Errorf("impossible conjunction = %v", got)
	}
}

func TestAttributeIndexEdgeCases(t *testing.T) {
	_, ix := buildAll(t)
	if got := ix.A.Candidates(nil); got != nil {
		t.Errorf("empty attr query = %v", got)
	}
	if got := ix.A.Vertices(dict.AttrID(999)); got != nil {
		t.Errorf("out-of-range attr = %v", got)
	}
	if ix.A.Entries() != 3 {
		t.Errorf("Entries = %d, want 3", ix.A.Entries())
	}
}

// TestSignatureIndexU0 replays the Section 4.2 example on the real graph:
// a query vertex with a single outgoing wasBornIn edge must retrieve
// exactly the vertices having an outgoing wasBornIn edge (Nolan, Amy) —
// and possibly no others on this tiny graph.
func TestSignatureIndexU0(t *testing.T) {
	g, ix := buildAll(t)
	born := lookupT(t, g, "wasBornIn")
	q := multigraph.SynopsisFromMultiEdges(nil, [][]dict.EdgeType{{born}}).AsQuery()
	got := ix.S.Candidates(q)

	mustHave := map[dict.VertexID]bool{
		lookupV(t, g, "Christopher_Nolan"): false,
		lookupV(t, g, "Amy_Winehouse"):     false,
	}
	for _, v := range got {
		if _, ok := mustHave[v]; ok {
			mustHave[v] = true
		}
		// Lemma 1 gives a superset; but every returned vertex must at least
		// dominate the query synopsis.
		if !g.VertexSynopsis(v).Dominates(q) {
			t.Errorf("returned vertex %d does not dominate query", v)
		}
	}
	for v, seen := range mustHave {
		if !seen {
			t.Errorf("true candidate %d pruned by S index", v)
		}
	}
}

func TestSignatureIndexCompleteness(t *testing.T) {
	g, ix := buildAll(t)
	if ix.S.Len() != g.NumVertices() {
		t.Errorf("S indexes %d vertices, want %d", ix.S.Len(), g.NumVertices())
	}
	// An empty query synopsis must return every vertex.
	var empty multigraph.Synopsis
	got := ix.S.Candidates(empty.AsQuery())
	if len(got) != g.NumVertices() {
		t.Errorf("empty-query candidates = %d, want all %d", len(got), g.NumVertices())
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("S candidates not sorted")
		}
	}
}

// TestNeighborhoodIndexFigure3 replays the worked example of Section 4.3:
// probing N+ of London with edge type wasBornIn yields {Nolan, Amy}.
func TestNeighborhoodIndexFigure3(t *testing.T) {
	g, ix := buildAll(t)
	london := lookupV(t, g, "London")
	born := lookupT(t, g, "wasBornIn")
	died := lookupT(t, g, "diedIn")

	got := ix.N.Neighbors(london, Incoming, []dict.EdgeType{born})
	wantSet := map[dict.VertexID]bool{
		lookupV(t, g, "Christopher_Nolan"): true,
		lookupV(t, g, "Amy_Winehouse"):     true,
	}
	if len(got) != 2 || !wantSet[got[0]] || !wantSet[got[1]] {
		t.Errorf("N+(London, wasBornIn) = %v, want Nolan and Amy", got)
	}

	// Multi-edge {wasBornIn, diedIn}: only Amy.
	me := []dict.EdgeType{born, died}
	if born > died {
		me = []dict.EdgeType{died, born}
	}
	got = ix.N.Neighbors(london, Incoming, me)
	if len(got) != 1 || got[0] != lookupV(t, g, "Amy_Winehouse") {
		t.Errorf("N+(London, {born,died}) = %v, want [Amy]", got)
	}
}

func TestNeighborhoodIndexOutgoing(t *testing.T) {
	g, ix := buildAll(t)
	amy := lookupV(t, g, "Amy_Winehouse")
	lived := lookupT(t, g, "livedIn")
	got := ix.N.Neighbors(amy, Outgoing, []dict.EdgeType{lived})
	if len(got) != 1 || got[0] != lookupV(t, g, "United_States") {
		t.Errorf("N-(Amy, livedIn) = %v, want [United_States]", got)
	}
	// Direction matters: incoming probe must be empty.
	if got := ix.N.Neighbors(amy, Incoming, []dict.EdgeType{lived}); got != nil {
		t.Errorf("N+(Amy, livedIn) = %v, want nil", got)
	}
}

func TestNeighborhoodIndexBounds(t *testing.T) {
	_, ix := buildAll(t)
	if got := ix.N.Neighbors(dict.VertexID(9999), Incoming, []dict.EdgeType{0}); got != nil {
		t.Errorf("out-of-range vertex = %v", got)
	}
}

func TestDirectionString(t *testing.T) {
	if Incoming.String() != "+" || Outgoing.String() != "-" {
		t.Errorf("Direction strings: %s %s", Incoming, Outgoing)
	}
}

// TestNeighborsAgainstAdjacency cross-checks every N probe against the
// graph's adjacency on a random graph.
func TestNeighborsAgainstAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var b multigraph.Builder
	for i := 0; i < 300; i++ {
		s := rdf.NewIRI("v" + string(rune('A'+rng.Intn(20))))
		o := rdf.NewIRI("v" + string(rune('A'+rng.Intn(20))))
		if s == o {
			continue
		}
		p := rdf.NewIRI("p" + string(rune('a'+rng.Intn(6))))
		if err := b.Add(rdf.Triple{S: s, P: p, O: o}); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	ix := Build(g)
	for v := 0; v < g.NumVertices(); v++ {
		vid := dict.VertexID(v)
		for _, nb := range g.In(vid) {
			for _, et := range nb.Types {
				got := ix.N.Neighbors(vid, Incoming, []dict.EdgeType{et})
				if !containsVertex(got, nb.V) {
					t.Fatalf("N+(%d, t%d) = %v missing %d", v, et, got, nb.V)
				}
			}
			got := ix.N.Neighbors(vid, Incoming, nb.Types)
			if !containsVertex(got, nb.V) {
				t.Fatalf("N+(%d, full multi-edge) missing %d", v, nb.V)
			}
		}
		for _, nb := range g.Out(vid) {
			got := ix.N.Neighbors(vid, Outgoing, nb.Types)
			if !containsVertex(got, nb.V) {
				t.Fatalf("N-(%d, full multi-edge) missing %d", v, nb.V)
			}
		}
	}
}

func containsVertex(lst []dict.VertexID, v dict.VertexID) bool {
	for _, x := range lst {
		if x == v {
			return true
		}
	}
	return false
}

// TestCardinalities cross-checks the planner statistics against a direct
// adjacency scan on a small graph with multi-edges and skewed type usage.
func TestCardinalities(t *testing.T) {
	triples, err := rdf.ParseString(`
<http://x/a> <http://y/p> <http://x/b> .
<http://x/a> <http://y/q> <http://x/b> .
<http://x/a> <http://y/p> <http://x/c> .
<http://x/b> <http://y/p> <http://x/c> .
<http://x/c> <http://y/r> <http://x/a> .
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := multigraph.FromTriples(triples)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(g)
	if ix.Card == nil {
		t.Fatal("Build left Card nil")
	}
	c := ix.Card
	if c.NumVertices != g.NumVertices() {
		t.Errorf("NumVertices = %d, want %d", c.NumVertices, g.NumVertices())
	}
	p, okP := g.Dicts.LookupEdgeType("http://y/p")
	q, okQ := g.Dicts.LookupEdgeType("http://y/q")
	r, okR := g.Dicts.LookupEdgeType("http://y/r")
	if !okP || !okQ || !okR {
		t.Fatal("edge types missing")
	}
	// p: edges a→b, a→c, b→c (3 pairs); sources {a,b}; targets {b,c}.
	if got := c.Edges[p]; got != 3 {
		t.Errorf("Edges[p] = %d, want 3", got)
	}
	if got := c.VerticesWith(Outgoing, p); got != 2 {
		t.Errorf("OutVertices[p] = %d, want 2", got)
	}
	if got := c.VerticesWith(Incoming, p); got != 2 {
		t.Errorf("InVertices[p] = %d, want 2", got)
	}
	// q: single edge a→b.
	if c.Edges[q] != 1 || c.VerticesWith(Outgoing, q) != 1 || c.VerticesWith(Incoming, q) != 1 {
		t.Errorf("q cardinalities = %d/%d/%d, want 1/1/1",
			c.Edges[q], c.VerticesWith(Outgoing, q), c.VerticesWith(Incoming, q))
	}
	// Fanout of p at a bound source: 3 edges over 2 sources.
	if got := c.Fanout(Outgoing, p); got != 1.5 {
		t.Errorf("Fanout(out, p) = %v, want 1.5", got)
	}
	// Unknown type is safe.
	if c.VerticesWith(Outgoing, r+100) != 0 || c.Fanout(Incoming, r+100) != 0 {
		t.Error("out-of-range type not zero")
	}
}

// Package index builds and serves the three offline index structures of the
// AMbER paper (Section 4): the attribute inverted index A, the vertex
// signature (synopsis) index S backed by an R-tree, and the vertex
// neighbourhood index N backed by per-vertex OTIL tries for incoming (N+)
// and outgoing (N−) edges. The ensemble I := {A, S, N} is what the online
// matching procedure probes.
package index

import (
	"sort"

	"repro/internal/dict"
	"repro/internal/multigraph"
	"repro/internal/otil"
	"repro/internal/rtree"
)

// Direction selects which side of a vertex's edges an index probe concerns.
type Direction uint8

const (
	// Incoming is the paper's '+': edges directed towards the vertex.
	Incoming Direction = iota
	// Outgoing is the paper's '−': edges directed away from the vertex.
	Outgoing
)

// String reports the paper's sign notation.
func (d Direction) String() string {
	if d == Incoming {
		return "+"
	}
	return "-"
}

// AttributeIndex is the inverted list A: for each attribute id, the sorted
// list of data vertices carrying it (Section 4.1).
type AttributeIndex struct {
	lists [][]dict.VertexID // indexed by AttrID
}

// BuildAttributeIndex scans the graph's vertex attributes.
func BuildAttributeIndex(g *multigraph.Graph) *AttributeIndex {
	lists := make([][]dict.VertexID, g.NumAttrs())
	for v := 0; v < g.NumVertices(); v++ {
		for _, a := range g.Attrs(dict.VertexID(v)) {
			lists[a] = append(lists[a], dict.VertexID(v))
		}
	}
	// Vertices are scanned in ascending order, so lists are already sorted.
	return &AttributeIndex{lists: lists}
}

// Vertices returns the sorted list of vertices carrying attribute a. The
// returned slice must not be modified.
func (ai *AttributeIndex) Vertices(a dict.AttrID) []dict.VertexID {
	if int(a) >= len(ai.lists) {
		return nil
	}
	return ai.lists[a]
}

// Candidates returns CᴬU: the vertices carrying every attribute in attrs.
// A nil attrs yields nil — callers only probe when attributes exist.
func (ai *AttributeIndex) Candidates(attrs []dict.AttrID) []dict.VertexID {
	if len(attrs) == 0 {
		return nil
	}
	// Intersect from the rarest list outward.
	lists := make([][]dict.VertexID, len(attrs))
	for i, a := range attrs {
		lst := ai.Vertices(a)
		if len(lst) == 0 {
			return nil
		}
		lists[i] = lst
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, lst := range lists[1:] {
		out = otil.IntersectSorted(out, lst)
		if len(out) == 0 {
			return nil
		}
	}
	res := make([]dict.VertexID, len(out))
	copy(res, out)
	return res
}

// Entries reports the total number of postings (for Table 5 size
// accounting).
func (ai *AttributeIndex) Entries() int {
	n := 0
	for _, l := range ai.lists {
		n += len(l)
	}
	return n
}

// SignatureIndex is the synopsis R-tree S (Section 4.2).
type SignatureIndex struct {
	tree *rtree.Tree
}

// BuildSignatureIndex computes every vertex synopsis and bulk-loads the
// R-tree.
func BuildSignatureIndex(g *multigraph.Graph) *SignatureIndex {
	n := g.NumVertices()
	points := make([]rtree.Point, n)
	ids := make([]uint32, n)
	for v := 0; v < n; v++ {
		points[v] = rtree.Point(g.VertexSynopsis(dict.VertexID(v)))
		ids[v] = uint32(v)
	}
	return &SignatureIndex{tree: rtree.BulkLoad(points, ids)}
}

// Candidates returns CˢU, sorted ascending: every data vertex whose synopsis
// dominates the query synopsis q (which callers must have passed through
// Synopsis.AsQuery). Per Lemma 1 this is a superset of all true matches.
func (si *SignatureIndex) Candidates(q multigraph.Synopsis) []dict.VertexID {
	ids := si.tree.CollectDominating(rtree.Point(q))
	out := make([]dict.VertexID, len(ids))
	for i, id := range ids {
		out[i] = dict.VertexID(id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len reports the number of indexed synopses.
func (si *SignatureIndex) Len() int { return si.tree.Len() }

// NeighborhoodIndex is N: per-vertex OTIL tries, split into N+ and N−
// (Section 4.3).
type NeighborhoodIndex struct {
	in  []otil.Trie // N+[v]: incoming multi-edges of v
	out []otil.Trie // N−[v]: outgoing multi-edges of v
}

// BuildNeighborhoodIndex constructs the tries from the graph adjacency.
func BuildNeighborhoodIndex(g *multigraph.Graph) *NeighborhoodIndex {
	n := g.NumVertices()
	ni := &NeighborhoodIndex{in: make([]otil.Trie, n), out: make([]otil.Trie, n)}
	for v := 0; v < n; v++ {
		vid := dict.VertexID(v)
		for _, nb := range g.In(vid) {
			ni.in[v].Insert(nb.Types, nb.V)
		}
		for _, nb := range g.Out(vid) {
			ni.out[v].Insert(nb.Types, nb.V)
		}
		ni.in[v].Finalize()
		ni.out[v].Finalize()
	}
	return ni
}

// Neighbors implements the paper's N probe: given matched data vertex v,
// a direction, and a multi-edge T′ (sorted, duplicate-free), return
//
//	dir=Incoming: {v′ | (v′,v) ∈ E ∧ T′ ⊆ LE(v′,v)}
//	dir=Outgoing: {v′ | (v,v′) ∈ E ∧ T′ ⊆ LE(v,v′)}
//
// sorted ascending.
func (ni *NeighborhoodIndex) Neighbors(v dict.VertexID, dir Direction, types []dict.EdgeType) []dict.VertexID {
	if int(v) >= len(ni.in) {
		return nil
	}
	if dir == Incoming {
		return ni.in[v].Lookup(types)
	}
	return ni.out[v].Lookup(types)
}

// Cardinalities are per-edge-type occurrence counts gathered while the
// ensemble is built. They are the data statistics the cost-based query
// planner (internal/plan) consumes: together with AttributeIndex list
// lengths and neighbourhood-trie probes they let the planner estimate
// candidate-set sizes before any matching happens.
type Cardinalities struct {
	// OutVertices[t] and InVertices[t] count the vertices with at least
	// one outgoing (resp. incoming) multi-edge whose label set contains
	// edge type t.
	OutVertices, InVertices []int
	// Edges[t] counts the directed vertex pairs whose multi-edge label
	// set contains edge type t.
	Edges []int
	// NumVertices mirrors the graph's vertex count (the estimate ceiling).
	NumVertices int
}

// VerticesWith reports how many vertices have at least one edge of type t
// on the given side. Unknown types report zero.
func (c *Cardinalities) VerticesWith(dir Direction, t dict.EdgeType) int {
	lst := c.OutVertices
	if dir == Incoming {
		lst = c.InVertices
	}
	if int(t) >= len(lst) {
		return 0
	}
	return lst[t]
}

// Fanout estimates how many neighbours a single probe of direction dir at
// a bound vertex returns for edge type t: the average multi-edge count per
// vertex that has any such edge. Unknown types report zero.
func (c *Cardinalities) Fanout(dir Direction, t dict.EdgeType) float64 {
	if int(t) >= len(c.Edges) {
		return 0
	}
	src := c.VerticesWith(dir, t)
	if src == 0 {
		return 0
	}
	return float64(c.Edges[t]) / float64(src)
}

// BuildCardinalities scans the adjacency once per direction.
func BuildCardinalities(g *multigraph.Graph) *Cardinalities {
	nT := g.NumEdgeTypes()
	c := &Cardinalities{
		OutVertices: make([]int, nT),
		InVertices:  make([]int, nT),
		Edges:       make([]int, nT),
		NumVertices: g.NumVertices(),
	}
	// stamp[t] == v+1 marks that vertex v was already counted for type t,
	// so multi-edges to distinct neighbours count the vertex only once.
	stamp := make([]int, nT)
	for v := 0; v < g.NumVertices(); v++ {
		for _, nb := range g.Out(dict.VertexID(v)) {
			for _, t := range nb.Types {
				c.Edges[t]++
				if stamp[t] != v+1 {
					stamp[t] = v + 1
					c.OutVertices[t]++
				}
			}
		}
	}
	for i := range stamp {
		stamp[i] = 0
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, nb := range g.In(dict.VertexID(v)) {
			for _, t := range nb.Types {
				if stamp[t] != v+1 {
					stamp[t] = v + 1
					c.InVertices[t]++
				}
			}
		}
	}
	return c
}

// Reader is the probe surface the online stage (internal/plan,
// internal/engine) matches against. The canonical implementation is
// GraphReader — a frozen graph plus its ensemble — but a mutation
// overlay (internal/delta) implements the same surface over base +
// delta, which is how live updates reach the engine without rebuilding
// the ensemble per write.
//
// Contract: every returned vertex list is sorted ascending and must not
// be modified. SignatureCandidates may over-approximate (Lemma 1 — the
// engine verifies every query multi-edge with exact probes later); all
// other probes are exact.
type Reader interface {
	// SignatureCandidates returns a superset of the vertices whose
	// signature can embed the query synopsis q (already in AsQuery form).
	SignatureCandidates(q multigraph.Synopsis) []dict.VertexID
	// Neighbors is the N probe: neighbours of v on side dir whose
	// multi-edge label set contains every type in types.
	Neighbors(v dict.VertexID, dir Direction, types []dict.EdgeType) []dict.VertexID
	// AttrCandidates returns the vertices carrying every attribute in
	// attrs (nil when attrs is empty).
	AttrCandidates(attrs []dict.AttrID) []dict.VertexID
	// HasAttrs reports whether v carries every attribute in attrs
	// (sorted ascending).
	HasAttrs(v dict.VertexID, attrs []dict.AttrID) bool
	// VertexAttrs returns v's sorted attribute ids (the paper's LV(v)).
	// The result must not be modified.
	VertexAttrs(v dict.VertexID) []dict.AttrID
	// HasEdgeTypes reports whether the edge from→to exists with a label
	// set containing every type in types (sorted ascending).
	HasEdgeTypes(from, to dict.VertexID, types []dict.EdgeType) bool
	// Cardinalities exposes the planner statistics (may be nil).
	Cardinalities() *Cardinalities
}

// GraphReader adapts a frozen graph and its index ensemble to the Reader
// probe surface. The zero value is not usable; both fields must be set.
type GraphReader struct {
	G  *multigraph.Graph
	Ix *Index
}

// NewReader bundles a graph with its ensemble.
func NewReader(g *multigraph.Graph, ix *Index) GraphReader {
	return GraphReader{G: g, Ix: ix}
}

// SignatureCandidates probes the R-tree S.
func (r GraphReader) SignatureCandidates(q multigraph.Synopsis) []dict.VertexID {
	return r.Ix.S.Candidates(q)
}

// Neighbors probes the OTIL tries N.
func (r GraphReader) Neighbors(v dict.VertexID, dir Direction, types []dict.EdgeType) []dict.VertexID {
	return r.Ix.N.Neighbors(v, dir, types)
}

// AttrCandidates probes the inverted index A.
func (r GraphReader) AttrCandidates(attrs []dict.AttrID) []dict.VertexID {
	return r.Ix.A.Candidates(attrs)
}

// HasAttrs checks the graph's attribute sets.
func (r GraphReader) HasAttrs(v dict.VertexID, attrs []dict.AttrID) bool {
	return r.G.HasAttrs(v, attrs)
}

// VertexAttrs returns the graph's attribute set of v.
func (r GraphReader) VertexAttrs(v dict.VertexID) []dict.AttrID {
	return r.G.Attrs(v)
}

// HasEdgeTypes checks the graph's adjacency.
func (r GraphReader) HasEdgeTypes(from, to dict.VertexID, types []dict.EdgeType) bool {
	return r.G.HasEdgeTypes(from, to, types)
}

// Cardinalities exposes the planner statistics.
func (r GraphReader) Cardinalities() *Cardinalities { return r.Ix.Card }

// Index is the ensemble I := {A, S, N} plus the cardinality statistics
// gathered alongside it.
type Index struct {
	A *AttributeIndex
	S *SignatureIndex
	N *NeighborhoodIndex
	// Card holds per-edge-type cardinalities for the cost-based planner.
	Card *Cardinalities
}

// Build constructs all three indexes and the planner statistics for g.
func Build(g *multigraph.Graph) *Index {
	return &Index{
		A:    BuildAttributeIndex(g),
		S:    BuildSignatureIndex(g),
		N:    BuildNeighborhoodIndex(g),
		Card: BuildCardinalities(g),
	}
}

package integration

import (
	"bufio"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	amber "repro"
	"repro/internal/repl"
)

// Follower crash-consistency: the parent hosts a replication primary and
// keeps writing while a child process runs a follower against it,
// printing "ACK <seq>" as its durable cursor advances. The parent
// SIGKILLs the child mid-replication, reopens the follower's directory
// in-process to verify the acknowledged prefix survived, then restarts a
// follower on that same directory and checks it converges on the full
// primary state.

const (
	fkillEnvDir     = "AMBER_FOLLOWER_KILL_DIR"
	fkillEnvPrimary = "AMBER_FOLLOWER_KILL_PRIMARY"
	fkillTotal      = 200
	fkillAckAfter   = 40
)

func fkillStmt(i int) string {
	return fmt.Sprintf("INSERT DATA { <http://fkill/s%d> <http://fkill/p> <http://fkill/o> . }", i)
}

// TestFollowerKillRecoverHelper is the child body; it only runs when the
// parent execs this binary with the env vars set.
func TestFollowerKillRecoverHelper(t *testing.T) {
	dir := os.Getenv(fkillEnvDir)
	primary := os.Getenv(fkillEnvPrimary)
	if dir == "" || primary == "" {
		t.Skip("helper: run by TestFollowerKillRecover")
	}
	f, err := repl.NewFollower(repl.FollowerOptions{
		Dir:         dir,
		Primary:     primary,
		ID:          "victim",
		Fsync:       "always",
		AckInterval: 10 * time.Millisecond,
		BackoffMin:  10 * time.Millisecond,
	})
	if err != nil {
		fmt.Printf("ERR %v\n", err)
		return
	}
	go func() {
		for range time.Tick(5 * time.Millisecond) {
			fmt.Printf("ACK %d\n", f.Cursor())
		}
	}()
	// The parent SIGKILLs us; the deadline is a leak guard if it dies first.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	f.Run(ctx) //nolint:errcheck
}

func TestFollowerKillRecover(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics are POSIX-only")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	// Primary: in-process durable database behind a real TCP listener so
	// the child can reach it.
	pdir := t.TempDir()
	db, err := amber.OpenDurable(pdir, &amber.DurabilityOptions{Fsync: "never"})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	p, err := repl.NewPrimary(db, repl.PrimaryOptions{Heartbeat: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	// Keep writing while the child replicates, so the kill lands mid-stream.
	writeErr := make(chan error, 1)
	go func() {
		for i := 0; i < fkillTotal; i++ {
			if err := db.Update(fkillStmt(i)); err != nil {
				writeErr <- fmt.Errorf("update %d: %w", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
		writeErr <- nil
	}()

	fdir := t.TempDir()
	cmd := exec.Command(exe, "-test.run", "^TestFollowerKillRecoverHelper$", "-test.v")
	cmd.Env = append(os.Environ(), fkillEnvDir+"="+fdir, fkillEnvPrimary+"="+ts.URL)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
	}()

	acked := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "ERR ") {
			t.Fatalf("helper failed: %s", line)
		}
		if n, ok := strings.CutPrefix(line, "ACK "); ok {
			v, err := strconv.Atoi(n)
			if err != nil {
				t.Fatalf("bad ack line %q", line)
			}
			acked = v
			if acked >= fkillAckAfter {
				break
			}
		}
	}
	if acked < fkillAckAfter {
		t.Fatalf("child exited after replicating only %d records", acked)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck // the kill is the expected exit
	if err := <-writeErr; err != nil {
		t.Fatal(err)
	}

	// The follower's directory must recover standalone to a valid prefix:
	// at least everything it acknowledged, never beyond what the primary
	// wrote, and internally consistent (triples == replayed records).
	re, err := amber.OpenDurable(fdir, &amber.DurabilityOptions{Fsync: "always"})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	n, err := re.Count("SELECT ?s WHERE { ?s <http://fkill/p> ?o . }", nil)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) < acked || int(n) > fkillTotal {
		t.Fatalf("recovered %d triples, want a prefix in [%d, %d]", n, acked, fkillTotal)
	}
	if last := re.Durability().LastSeq; last != uint64(n) {
		t.Fatalf("recovered cursor %d but %d triples — not a dense prefix", last, n)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// A restarted follower on the same directory resumes from the
	// recovered cursor and converges on the full primary state.
	f, err := repl.NewFollower(repl.FollowerOptions{
		Dir:         fdir,
		Primary:     ts.URL,
		ID:          "victim",
		Fsync:       "never",
		AckInterval: 10 * time.Millisecond,
		BackoffMin:  10 * time.Millisecond,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("follower restart: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }() //nolint:errcheck
	defer func() {
		cancel()
		<-done
		f.Close() //nolint:errcheck
	}()
	deadline := time.Now().Add(15 * time.Second)
	for {
		n, err := f.DB().Count("SELECT ?s WHERE { ?s <http://fkill/p> ?o . }", nil)
		if err != nil {
			t.Fatal(err)
		}
		if int(n) == fkillTotal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted follower stuck at %d of %d triples", n, fkillTotal)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Package integration exercises the complete system end to end: generated
// corpora flow through the RDF parser, the multigraph builder, the index
// ensemble, the query compiler and all three engines, with the snapshot
// layer and the parallel counter in the loop. The triple store serves as
// the ground-truth oracle throughout.
package integration

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/triplestore"
	"repro/internal/workload"
)

// corpus is a shared LUBM dataset, loaded once.
var corpus struct {
	triples []rdf.Triple
	amber   *core.Store
	oracle  *triplestore.Store
	graph   *baseline.Graph
}

func setup(t *testing.T) {
	t.Helper()
	if corpus.amber != nil {
		return
	}
	corpus.triples = datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 99, Compact: true})
	var err error
	corpus.amber, err = core.NewStore(corpus.triples)
	if err != nil {
		t.Fatal(err)
	}
	corpus.oracle, err = triplestore.FromTriples(corpus.triples)
	if err != nil {
		t.Fatal(err)
	}
	corpus.graph, err = baseline.FromTriples(corpus.triples)
	if err != nil {
		t.Fatal(err)
	}
}

// oracleCount evaluates via the permutation-index store.
func oracleCount(t *testing.T, q *sparql.Query) uint64 {
	t.Helper()
	n, err := corpus.oracle.Count(corpus.oracle.Compile(q), triplestore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func amberCount(t *testing.T, q *sparql.Query) uint64 {
	t.Helper()
	qg, err := corpus.amber.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	n, err := corpus.amber.Count(qg, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestKnownCardinalities pins down exact result counts for hand-written
// queries whose answers are structurally determined by the generator: each
// grad student has exactly one advisor who works for exactly one
// department, so the advisor-in-own-department join has at most one row
// per student, etc.
func TestKnownCardinalities(t *testing.T) {
	setup(t)
	// Count entities by role directly from the triples.
	var gradAdvisorEdges, headOfEdges int
	for _, tr := range corpus.triples {
		switch {
		case strings.HasSuffix(tr.P.Value, "#advisor"):
			gradAdvisorEdges++
		case strings.HasSuffix(tr.P.Value, "#headOf"):
			headOfEdges++
		}
	}
	q, err := sparql.Parse(`
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT * WHERE { ?s ub:advisor ?p }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := amberCount(t, q); got != uint64(gradAdvisorEdges) {
		t.Errorf("advisor count = %d, want %d (raw edges)", got, gradAdvisorEdges)
	}
	q, err = sparql.Parse(`
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT * WHERE { ?p ub:headOf ?d }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := amberCount(t, q); got != uint64(headOfEdges) {
		t.Errorf("headOf count = %d, want %d", got, headOfEdges)
	}
}

// TestWorkloadEquivalence runs generated star and complex workloads of
// several sizes through all three engines and demands identical counts.
func TestWorkloadEquivalence(t *testing.T) {
	setup(t)
	gen := workload.NewGenerator(corpus.triples, 123, workload.DefaultConfig())
	for _, kind := range []workload.Kind{workload.Star, workload.Complex} {
		for _, size := range []int{3, 6, 12} {
			for i := 0; i < 5; i++ {
				q, ok := gen.Generate(kind, size)
				if !ok {
					t.Fatalf("%v/%d: generation failed", kind, size)
				}
				want := oracleCount(t, q)
				if got := amberCount(t, q); got != want {
					t.Fatalf("%v/%d query %d: amber=%d oracle=%d\n%s", kind, size, i, got, want, q)
				}
				bl, err := corpus.graph.Count(corpus.graph.Compile(q), baseline.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if bl != want {
					t.Fatalf("%v/%d query %d: baseline=%d oracle=%d\n%s", kind, size, i, bl, want, q)
				}
				if want == 0 {
					t.Fatalf("%v/%d query %d: workload generator produced empty result", kind, size, i)
				}
			}
		}
	}
}

// TestParallelEquivalenceOnWorkload: the parallel counter agrees with the
// serial one on realistic workloads.
func TestParallelEquivalenceOnWorkload(t *testing.T) {
	setup(t)
	gen := workload.NewGenerator(corpus.triples, 321, workload.DefaultConfig())
	for i := 0; i < 10; i++ {
		q, ok := gen.Generate(workload.Complex, 8)
		if !ok {
			t.Fatal("generation failed")
		}
		qg, err := corpus.amber.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := corpus.amber.Count(qg, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		par, err := corpus.amber.CountParallel(qg, engine.Options{}, 6)
		if err != nil {
			t.Fatal(err)
		}
		if par != serial {
			t.Fatalf("query %d: parallel=%d serial=%d\n%s", i, par, serial, q)
		}
	}
}

// TestSnapshotPreservesAnswers: a store saved and reloaded answers every
// workload query identically.
func TestSnapshotPreservesAnswers(t *testing.T) {
	setup(t)
	var buf bytes.Buffer
	if err := corpus.amber.Save(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := core.LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.NewGenerator(corpus.triples, 77, workload.DefaultConfig())
	for i := 0; i < 8; i++ {
		q, ok := gen.Generate(workload.Star, 5)
		if !ok {
			t.Fatal("generation failed")
		}
		qa, err := corpus.amber.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		qb, err := reloaded.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		a, err := corpus.amber.Count(qa, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := reloaded.Count(qb, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("query %d: original=%d reloaded=%d\n%s", i, a, b, q)
		}
	}
}

// TestRDFRoundTripThroughPipeline: serializing the corpus to N-Triples and
// re-ingesting it reproduces the same statistics and answers.
func TestRDFRoundTripThroughPipeline(t *testing.T) {
	setup(t)
	var sb strings.Builder
	enc := rdf.NewEncoder(&sb)
	for _, tr := range corpus.triples {
		if err := enc.Encode(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	st, err := core.NewStoreFromReader(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Graph().NumVertices() != corpus.amber.Graph().NumVertices() ||
		st.Graph().NumEdges() != corpus.amber.Graph().NumEdges() ||
		st.Graph().NumAttrs() != corpus.amber.Graph().NumAttrs() {
		t.Errorf("round-trip stats differ: V=%d/%d E=%d/%d A=%d/%d",
			st.Graph().NumVertices(), corpus.amber.Graph().NumVertices(),
			st.Graph().NumEdges(), corpus.amber.Graph().NumEdges(),
			st.Graph().NumAttrs(), corpus.amber.Graph().NumAttrs())
	}
}

// TestTimeoutHonouredUnderLoad: a sub-millisecond deadline must abort a
// heavy query quickly and report the timeout.
func TestTimeoutHonouredUnderLoad(t *testing.T) {
	setup(t)
	gen := workload.NewGenerator(corpus.triples, 55, workload.DefaultConfig())
	q, ok := gen.Generate(workload.Star, 15)
	if !ok {
		t.Skip("no large star available")
	}
	qg, err := corpus.amber.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = corpus.amber.Count(qg, engine.Options{Deadline: time.Now().Add(100 * time.Microsecond)})
	elapsed := time.Since(start)
	// Either it finished legitimately fast or it must report the deadline;
	// in both cases it must come back promptly.
	if err != nil && err != engine.ErrDeadlineExceeded {
		t.Fatalf("unexpected error: %v", err)
	}
	if elapsed > time.Second {
		t.Errorf("deadline ignored: took %s", elapsed)
	}
}

// TestExtensionFragmentEndToEnd: DISTINCT/UNION/FILTER evaluated over the
// generated corpus agree with manual recomputation from the oracle rows.
func TestExtensionFragmentEndToEnd(t *testing.T) {
	setup(t)
	// All departments that anyone works for or is a member of.
	rows, err := corpus.amber.Select(`
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT DISTINCT ?d WHERE {
  { ?x ub:worksFor ?d } UNION { ?x ub:memberOf ?d }
}`, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for _, tr := range corpus.triples {
		if strings.HasSuffix(tr.P.Value, "#worksFor") || strings.HasSuffix(tr.P.Value, "#memberOf") {
			want[tr.O.Value] = true
		}
	}
	if len(rows) != len(want) {
		t.Errorf("distinct union departments = %d, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		if !want[row[0].Value] {
			t.Errorf("unexpected department %s", row[0].Value)
		}
	}
}

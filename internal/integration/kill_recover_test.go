package integration

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	amber "repro"
)

// The kill-and-recover test re-executes this test binary as a child
// process (the stdlib's helper-process pattern): the child opens a
// durable database with fsync=always, applies updates one at a time, and
// prints "ACK <n>" after each acknowledged batch. The parent SIGKILLs it
// mid-stream — a real crash, no deferred cleanup, no atexit flushing —
// then reopens the directory in-process and verifies every acknowledged
// update survived.

const (
	killEnvDir   = "AMBER_KILL_HELPER_DIR"
	killTotal    = 50
	killAckAfter = 10 // parent kills once it has read this many acks
)

func killSubject(i int) string { return fmt.Sprintf("http://kill/s%d", i) }

// TestKillRecoverHelper is the child body; it only runs when re-executed
// by TestKillRecover with the environment variable set.
func TestKillRecoverHelper(t *testing.T) {
	dir := os.Getenv(killEnvDir)
	if dir == "" {
		t.Skip("helper process body; run via TestKillRecover")
	}
	db, err := amber.OpenDurable(dir, &amber.DurabilityOptions{Fsync: "always"})
	if err != nil {
		fmt.Printf("ERR %v\n", err)
		return
	}
	for i := 0; i < killTotal; i++ {
		u := fmt.Sprintf("INSERT DATA { <%s> <http://kill/p> <http://kill/o%d> . }", killSubject(i), i)
		if err := db.Update(u); err != nil {
			fmt.Printf("ERR %v\n", err)
			return
		}
		// The update returned: it is fsynced and recoverable by contract.
		fmt.Printf("ACK %d\n", i+1)
	}
	// Stay alive so the parent always kills a running process, never
	// reaps a clean exit.
	time.Sleep(time.Minute)
}

func TestKillRecover(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics are POSIX-only")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe, "-test.run", "^TestKillRecoverHelper$", "-test.v")
	cmd.Env = append(os.Environ(), killEnvDir+"="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
	}()

	// Read acknowledgements until enough writes are durable, then SIGKILL
	// the child mid-flight.
	acked := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "ERR ") {
			t.Fatalf("helper failed: %s", line)
		}
		if n, ok := strings.CutPrefix(line, "ACK "); ok {
			v, err := strconv.Atoi(n)
			if err != nil {
				t.Fatalf("bad ack line %q", line)
			}
			acked = v
			if acked >= killAckAfter {
				break
			}
		}
	}
	if acked < killAckAfter {
		t.Fatalf("child exited after only %d acks", acked)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck // the kill is the expected exit

	// Recover: every acknowledged update must be present; the total state
	// must be a valid prefix of the send sequence (the child may have
	// gotten further than the last ack we read before the kill landed).
	db, err := amber.OpenDurable(dir, &amber.DurabilityOptions{Fsync: "always"})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer db.Close()
	n, err := db.Count("SELECT ?s ?o WHERE { ?s <http://kill/p> ?o . }", nil)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) < acked || int(n) > killTotal {
		t.Fatalf("recovered %d triples, want a prefix in [%d, %d]", n, acked, killTotal)
	}
	if rep := db.Durability().Replayed; rep != int(n) {
		t.Fatalf("replayed %d records but counted %d triples", rep, n)
	}
	// The prefix property: exactly the first n subjects exist.
	for i := 0; i < int(n); i++ {
		q := fmt.Sprintf("SELECT ?o WHERE { <%s> <http://kill/p> ?o . }", killSubject(i))
		c, err := db.Count(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if c != 1 {
			t.Fatalf("acknowledged subject %d missing after recovery", i)
		}
	}
	if c, _ := db.Count(fmt.Sprintf("SELECT ?o WHERE { <%s> <http://kill/p> ?o . }", killSubject(int(n))), nil); c != 0 {
		t.Fatalf("recovered state is not a prefix: subject %d present beyond count %d", n, n)
	}
}

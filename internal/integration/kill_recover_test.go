package integration

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	amber "repro"
	"repro/internal/rdf"
)

// The kill-and-recover test re-executes this test binary as a child
// process (the stdlib's helper-process pattern): the child opens a
// durable database with fsync=always, applies updates one at a time, and
// prints "ACK <n>" after each acknowledged batch. The parent SIGKILLs it
// mid-stream — a real crash, no deferred cleanup, no atexit flushing —
// then reopens the directory in-process and verifies every acknowledged
// update survived.

const (
	killEnvDir   = "AMBER_KILL_HELPER_DIR"
	killTotal    = 50
	killAckAfter = 10 // parent kills once it has read this many acks
)

func killSubject(i int) string { return fmt.Sprintf("http://kill/s%d", i) }

// TestKillRecoverHelper is the child body; it only runs when re-executed
// by TestKillRecover with the environment variable set.
func TestKillRecoverHelper(t *testing.T) {
	dir := os.Getenv(killEnvDir)
	if dir == "" {
		t.Skip("helper process body; run via TestKillRecover")
	}
	db, err := amber.OpenDurable(dir, &amber.DurabilityOptions{Fsync: "always"})
	if err != nil {
		fmt.Printf("ERR %v\n", err)
		return
	}
	for i := 0; i < killTotal; i++ {
		u := fmt.Sprintf("INSERT DATA { <%s> <http://kill/p> <http://kill/o%d> . }", killSubject(i), i)
		if err := db.Update(u); err != nil {
			fmt.Printf("ERR %v\n", err)
			return
		}
		// The update returned: it is fsynced and recoverable by contract.
		fmt.Printf("ACK %d\n", i+1)
	}
	// Stay alive so the parent always kills a running process, never
	// reaps a clean exit.
	time.Sleep(time.Minute)
}

func TestKillRecover(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics are POSIX-only")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe, "-test.run", "^TestKillRecoverHelper$", "-test.v")
	cmd.Env = append(os.Environ(), killEnvDir+"="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
	}()

	// Read acknowledgements until enough writes are durable, then SIGKILL
	// the child mid-flight.
	acked := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "ERR ") {
			t.Fatalf("helper failed: %s", line)
		}
		if n, ok := strings.CutPrefix(line, "ACK "); ok {
			v, err := strconv.Atoi(n)
			if err != nil {
				t.Fatalf("bad ack line %q", line)
			}
			acked = v
			if acked >= killAckAfter {
				break
			}
		}
	}
	if acked < killAckAfter {
		t.Fatalf("child exited after only %d acks", acked)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck // the kill is the expected exit

	// Recover: every acknowledged update must be present; the total state
	// must be a valid prefix of the send sequence (the child may have
	// gotten further than the last ack we read before the kill landed).
	db, err := amber.OpenDurable(dir, &amber.DurabilityOptions{Fsync: "always"})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer db.Close()
	n, err := db.Count("SELECT ?s ?o WHERE { ?s <http://kill/p> ?o . }", nil)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) < acked || int(n) > killTotal {
		t.Fatalf("recovered %d triples, want a prefix in [%d, %d]", n, acked, killTotal)
	}
	if rep := db.Durability().Replayed; rep != int(n) {
		t.Fatalf("replayed %d records but counted %d triples", rep, n)
	}
	// The prefix property: exactly the first n subjects exist.
	for i := 0; i < int(n); i++ {
		q := fmt.Sprintf("SELECT ?o WHERE { <%s> <http://kill/p> ?o . }", killSubject(i))
		c, err := db.Count(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if c != 1 {
			t.Fatalf("acknowledged subject %d missing after recovery", i)
		}
	}
	if c, _ := db.Count(fmt.Sprintf("SELECT ?o WHERE { <%s> <http://kill/p> ?o . }", killSubject(int(n))), nil); c != 0 {
		t.Fatalf("recovered state is not a prefix: subject %d present beyond count %d", n, n)
	}
}

// Concurrent-writer variant: with group commit, concurrently
// acknowledged batches may share one WAL append span and fsync — a
// SIGKILL right after the acks must still recover every one of them.

const (
	killGroupEnvDir   = "AMBER_KILL_GROUP_HELPER_DIR"
	killGroupWriters  = 4
	killGroupTotal    = 30 // batches per writer
	killGroupAckAfter = 40 // parent kills once it has read this many acks
)

func killGroupSubject(w, i int) string { return fmt.Sprintf("http://killg/w%d/s%d", w, i) }

// TestKillRecoverGroupCommitHelper is the child body: four writer
// goroutines Mutate concurrently against a fsync=always database, each
// printing "ACK <writer> <batch>" after its batch is acknowledged.
func TestKillRecoverGroupCommitHelper(t *testing.T) {
	dir := os.Getenv(killGroupEnvDir)
	if dir == "" {
		t.Skip("helper process body; run via TestKillRecoverGroupCommit")
	}
	db, err := amber.OpenDurable(dir, &amber.DurabilityOptions{Fsync: "always"})
	if err != nil {
		fmt.Printf("ERR %v\n", err)
		return
	}
	var mu sync.Mutex // serializes the ACK lines
	var wg sync.WaitGroup
	for w := 0; w < killGroupWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < killGroupTotal; i++ {
				add := []rdf.Triple{{
					S: rdf.NewIRI(killGroupSubject(w, i)),
					P: rdf.NewIRI("http://killg/p"),
					O: rdf.NewIRI(fmt.Sprintf("http://killg/o%d", i)),
				}}
				if err := db.Mutate(add, nil); err != nil {
					mu.Lock()
					fmt.Printf("ERR %v\n", err)
					mu.Unlock()
					return
				}
				mu.Lock()
				fmt.Printf("ACK %d %d\n", w, i)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	// Stay alive so the parent always kills a running process.
	time.Sleep(time.Minute)
}

func TestKillRecoverGroupCommit(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics are POSIX-only")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cmd := exec.Command(exe, "-test.run", "^TestKillRecoverGroupCommitHelper$", "-test.v")
	cmd.Env = append(os.Environ(), killGroupEnvDir+"="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
	}()

	// Collect acknowledged (writer, batch) pairs until enough are durable,
	// then SIGKILL the child mid-flight.
	type ack struct{ w, i int }
	acked := map[ack]bool{}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "ERR ") {
			t.Fatalf("helper failed: %s", line)
		}
		fields := strings.Fields(line)
		if len(fields) == 3 && fields[0] == "ACK" {
			w, err1 := strconv.Atoi(fields[1])
			i, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				t.Fatalf("bad ack line %q", line)
			}
			acked[ack{w, i}] = true
			if len(acked) >= killGroupAckAfter {
				break
			}
		}
	}
	if len(acked) < killGroupAckAfter {
		t.Fatalf("child exited after only %d acks", len(acked))
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck // the kill is the expected exit

	db, err := amber.OpenDurable(dir, &amber.DurabilityOptions{Fsync: "always"})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer db.Close()
	// Every acknowledged batch must have survived, whatever commit group
	// it rode in.
	for a := range acked {
		q := fmt.Sprintf("SELECT ?o WHERE { <%s> <http://killg/p> ?o . }", killGroupSubject(a.w, a.i))
		c, err := db.Count(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if c != 1 {
			t.Fatalf("acknowledged batch (writer %d, batch %d) missing after recovery", a.w, a.i)
		}
	}
	// Per-writer prefix property: a writer's batches commit in its issue
	// order, so each writer's recovered subjects are a prefix of its
	// sequence — no holes, whatever the interleaving across writers.
	for w := 0; w < killGroupWriters; w++ {
		present := -1
		for i := 0; i < killGroupTotal; i++ {
			q := fmt.Sprintf("SELECT ?o WHERE { <%s> <http://killg/p> ?o . }", killGroupSubject(w, i))
			c, err := db.Count(q, nil)
			if err != nil {
				t.Fatal(err)
			}
			if c == 1 {
				if i != present+1 {
					t.Fatalf("writer %d: hole in recovered sequence at batch %d", w, i)
				}
				present = i
			}
		}
	}
}

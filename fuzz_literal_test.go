package amber

import (
	"context"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/results"
)

// validDatatypeIRI bounds the fuzzer to datatype IRIs the N-Triples
// surface syntax can express (anything not containing the delimiters the
// parser uses to frame an IRIRef).
func validDatatypeIRI(s string) bool {
	if s == "" {
		return false
	}
	return !strings.ContainsAny(s, "<>\"\n\r\t ")
}

// validLangTag bounds language tags to the [A-Za-z0-9-]+ surface the
// parsers accept.
func validLangTag(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-') {
			return false
		}
	}
	return true
}

// FuzzLiteralRoundTrip drives arbitrary literal content through the full
// pipeline — N-Triples serialization → parse → dictionary intern → engine
// decode → SPARQL TSV serialization → re-parse — and asserts the typed
// term survives byte-identical at every hop.
func FuzzLiteralRoundTrip(f *testing.F) {
	f.Add("42", "http://www.w3.org/2001/XMLSchema#integer", "")
	f.Add("hi", "", "en")
	f.Add("plain", "", "")
	f.Add("line1\nline2\t\"quoted\"\\", "", "")
	f.Add("", "", "")                                             // empty lexical form
	f.Add("x", "http://www.w3.org/2001/XMLSchema#string", "")     // normalizes to plain
	f.Add("折り紙", "", "ja")                                        // non-ASCII lexical
	f.Add("a@en", "", "")                                         // fold-ambiguous lexical
	f.Add("42^^http://www.w3.org/2001/XMLSchema#integer", "", "") // fold-ambiguous lexical
	f.Fuzz(func(t *testing.T, lex, dt, lang string) {
		var o Term
		switch {
		case lang != "":
			if !validLangTag(lang) {
				t.Skip()
			}
			o = NewLangLiteral(lex, lang)
		case dt != "":
			if !validDatatypeIRI(dt) {
				t.Skip()
			}
			o = NewTypedLiteral(lex, dt)
		default:
			o = NewLiteral(lex)
		}

		// Hop 1: render to N-Triples and parse back.
		line := "<http://x/s> <http://p/v> " + o.String() + " .\n"
		triples, err := rdf.ParseString(line)
		if err != nil {
			t.Fatalf("constructed line does not parse: %v\n%s", err, line)
		}
		if len(triples) != 1 || triples[0].O != o {
			t.Fatalf("N-Triples round trip: %+v, want %+v", triples[0].O, o)
		}

		// Hop 2: intern into a store and decode through a query binding.
		db, err := OpenString(line)
		if err != nil {
			t.Fatalf("OpenString: %v", err)
		}
		var got []Term
		for b, err := range db.All(context.Background(), `SELECT ?v WHERE { <http://x/s> <http://p/v> ?v }`, nil) {
			if err != nil {
				t.Fatalf("query: %v", err)
			}
			if v, ok := b.Get("v"); ok {
				got = append(got, v)
			}
		}
		if len(got) != 1 || got[0] != o {
			t.Fatalf("intern→decode round trip: %v, want %v", got, o)
		}

		// Hop 3: serialize as SPARQL TSV (full Turtle term syntax) and
		// parse the field back as N-Triples.
		tsv, _ := results.Lookup("tsv")
		var sb strings.Builder
		if err := results.WriteAll(tsv, &sb, []string{"v"}, []map[string]rdf.Term{{"v": o}}); err != nil {
			t.Fatalf("TSV: %v", err)
		}
		lines := strings.SplitN(sb.String(), "\n", 3)
		if len(lines) < 2 {
			t.Fatalf("TSV output too short: %q", sb.String())
		}
		reparsed, err := rdf.ParseString("<http://x/s> <http://p/v> " + lines[1] + " .\n")
		if err != nil {
			t.Fatalf("TSV field does not re-parse: %v\nfield: %q", err, lines[1])
		}
		if reparsed[0].O != o {
			t.Fatalf("TSV round trip: %+v, want %+v", reparsed[0].O, o)
		}
	})
}

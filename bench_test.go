// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 7), plus ablations for the design choices DESIGN.md
// calls out. The full text-table reproduction lives in cmd/amber-bench;
// these testing.B benches regenerate the same measurements in benchmark
// form:
//
//	Table 1    → BenchmarkTable1_*        (complex, 50 triplets, DBPEDIA)
//	Table 4    → BenchmarkTable4_Stats    (statistics computation)
//	Table 5    → BenchmarkTable5_*        (offline database/index build)
//	Figures 6–11 → BenchmarkFig{6..11}_*  (star/complex × dataset × engine)
//
// Engine naming: AMbER (this paper), PermStore (x-RDF-3X/Virtuoso class),
// GraphMatch (gStore/TurboHom++ class).
package amber

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/multigraph"
	"repro/internal/otil"
	"repro/internal/rdf"
	"repro/internal/rtree"
	"repro/internal/sparql"
	"repro/internal/workload"

	"repro/internal/dict"
)

// benchConfig is the laptop-scale setting shared by every benchmark.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.QueriesPerPoint = 10
	cfg.Timeout = 250 * time.Millisecond
	cfg.Universities = 2
	return cfg
}

var (
	dsCache = map[string]*experiments.Dataset{}
	dsMu    sync.Mutex
)

func dataset(b *testing.B, name string) *experiments.Dataset {
	b.Helper()
	dsMu.Lock()
	defer dsMu.Unlock()
	if d, ok := dsCache[name]; ok {
		return d
	}
	d, err := experiments.BuildDataset(name, benchConfig())
	if err != nil {
		b.Fatal(err)
	}
	dsCache[name] = d
	return d
}

// benchWorkload pre-generates a workload so the benchmark loop measures
// only query execution. Workloads are cached per (dataset, kind, size)
// with a deterministic seed, so the three engines of one figure point are
// measured on identical queries regardless of benchmark execution order.
var (
	wlCache = map[string][]*sparql.Query{}
	wlMu    sync.Mutex
)

func benchWorkload(b *testing.B, d *experiments.Dataset, kind workload.Kind, size, n int) []*sparql.Query {
	b.Helper()
	key := d.Name + "/" + kind.String() + "/" + itoa2(size) + "/" + itoa2(n)
	wlMu.Lock()
	qs, ok := wlCache[key]
	if !ok {
		seed := int64(size)*1000 + int64(kind) + int64(len(d.Name))
		gen := workload.NewGenerator(d.Triples, seed, workload.DefaultConfig())
		qs = gen.Workload(kind, size, n)
		wlCache[key] = qs
	}
	wlMu.Unlock()
	if len(qs) == 0 {
		b.Skipf("no %v queries of size %d in %s at this scale", kind, size, d.Name)
	}
	return qs
}

func itoa2(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// runEngine executes one full workload sweep per benchmark iteration.
// Sweeping (rather than cycling single queries) keeps per-iteration cost
// uniform: individual queries range from microseconds to the full timeout,
// and Go's b.N estimation from a cheap first iteration would otherwise
// schedule astronomically many timeout-bound ones. ns/op therefore reads
// as "per workload of len(qs) queries".
func runEngine(b *testing.B, d *experiments.Dataset, eng experiments.EngineName, qs []*sparql.Query, timeout time.Duration) {
	b.Helper()
	answered, total := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			ok, _, _ := d.RunQuery(eng, q, timeout)
			total++
			if ok {
				answered++
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(100*float64(answered)/float64(total), "%answered")
	b.ReportMetric(float64(len(qs)), "queries/op")
}

// ---- Table 1: complex queries of 50 triplets on DBPEDIA ---------------

func benchTable1(b *testing.B, eng experiments.EngineName) {
	d := dataset(b, "DBPEDIA")
	qs := benchWorkload(b, d, workload.Complex, 50, 6)
	runEngine(b, d, eng, qs, benchConfig().Timeout)
}

func BenchmarkTable1_AMbER(b *testing.B)      { benchTable1(b, experiments.AMbER) }
func BenchmarkTable1_PermStore(b *testing.B)  { benchTable1(b, experiments.PermStore) }
func BenchmarkTable1_GraphMatch(b *testing.B) { benchTable1(b, experiments.GraphMatch) }

// ---- Table 4: benchmark statistics -------------------------------------

func BenchmarkTable4_Stats(b *testing.B) {
	ds := []*experiments.Dataset{dataset(b, "DBPEDIA"), dataset(b, "YAGO"), dataset(b, "LUBM")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4(ds)
		if len(rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

// ---- Table 5: offline stage (database and index construction) ---------

func benchTable5Build(b *testing.B, name string) {
	d := dataset(b, name) // generation cost excluded
	triples := d.Triples
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := multigraph.FromTriples(triples)
		if err != nil {
			b.Fatal(err)
		}
		_ = g
	}
}

func BenchmarkTable5_BuildDatabase_DBPEDIA(b *testing.B) { benchTable5Build(b, "DBPEDIA") }
func BenchmarkTable5_BuildDatabase_YAGO(b *testing.B)    { benchTable5Build(b, "YAGO") }
func BenchmarkTable5_BuildDatabase_LUBM(b *testing.B)    { benchTable5Build(b, "LUBM") }

func benchTable5Index(b *testing.B, name string) {
	d := dataset(b, name)
	g := d.Amber.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := index.Build(g)
		_ = ix
	}
}

func BenchmarkTable5_BuildIndex_DBPEDIA(b *testing.B) { benchTable5Index(b, "DBPEDIA") }
func BenchmarkTable5_BuildIndex_YAGO(b *testing.B)    { benchTable5Index(b, "YAGO") }
func BenchmarkTable5_BuildIndex_LUBM(b *testing.B)    { benchTable5Index(b, "LUBM") }

// ---- Figures 6–11: star/complex × dataset × engine --------------------

func benchFigure(b *testing.B, ds string, kind workload.Kind, size int, eng experiments.EngineName) {
	d := dataset(b, ds)
	qs := benchWorkload(b, d, kind, size, 6)
	runEngine(b, d, eng, qs, benchConfig().Timeout)
}

// Figure 6: star-shaped queries on DBPEDIA.
func BenchmarkFig6_Star_DBPEDIA_Size10_AMbER(b *testing.B) {
	benchFigure(b, "DBPEDIA", workload.Star, 10, experiments.AMbER)
}
func BenchmarkFig6_Star_DBPEDIA_Size10_PermStore(b *testing.B) {
	benchFigure(b, "DBPEDIA", workload.Star, 10, experiments.PermStore)
}
func BenchmarkFig6_Star_DBPEDIA_Size10_GraphMatch(b *testing.B) {
	benchFigure(b, "DBPEDIA", workload.Star, 10, experiments.GraphMatch)
}
func BenchmarkFig6_Star_DBPEDIA_Size40_AMbER(b *testing.B) {
	benchFigure(b, "DBPEDIA", workload.Star, 40, experiments.AMbER)
}
func BenchmarkFig6_Star_DBPEDIA_Size40_PermStore(b *testing.B) {
	benchFigure(b, "DBPEDIA", workload.Star, 40, experiments.PermStore)
}
func BenchmarkFig6_Star_DBPEDIA_Size40_GraphMatch(b *testing.B) {
	benchFigure(b, "DBPEDIA", workload.Star, 40, experiments.GraphMatch)
}

// Figure 7: complex-shaped queries on DBPEDIA.
func BenchmarkFig7_Complex_DBPEDIA_Size10_AMbER(b *testing.B) {
	benchFigure(b, "DBPEDIA", workload.Complex, 10, experiments.AMbER)
}
func BenchmarkFig7_Complex_DBPEDIA_Size10_PermStore(b *testing.B) {
	benchFigure(b, "DBPEDIA", workload.Complex, 10, experiments.PermStore)
}
func BenchmarkFig7_Complex_DBPEDIA_Size10_GraphMatch(b *testing.B) {
	benchFigure(b, "DBPEDIA", workload.Complex, 10, experiments.GraphMatch)
}
func BenchmarkFig7_Complex_DBPEDIA_Size40_AMbER(b *testing.B) {
	benchFigure(b, "DBPEDIA", workload.Complex, 40, experiments.AMbER)
}
func BenchmarkFig7_Complex_DBPEDIA_Size40_PermStore(b *testing.B) {
	benchFigure(b, "DBPEDIA", workload.Complex, 40, experiments.PermStore)
}
func BenchmarkFig7_Complex_DBPEDIA_Size40_GraphMatch(b *testing.B) {
	benchFigure(b, "DBPEDIA", workload.Complex, 40, experiments.GraphMatch)
}

// Figure 8: star-shaped queries on YAGO.
func BenchmarkFig8_Star_YAGO_Size10_AMbER(b *testing.B) {
	benchFigure(b, "YAGO", workload.Star, 10, experiments.AMbER)
}
func BenchmarkFig8_Star_YAGO_Size10_PermStore(b *testing.B) {
	benchFigure(b, "YAGO", workload.Star, 10, experiments.PermStore)
}
func BenchmarkFig8_Star_YAGO_Size10_GraphMatch(b *testing.B) {
	benchFigure(b, "YAGO", workload.Star, 10, experiments.GraphMatch)
}
func BenchmarkFig8_Star_YAGO_Size40_AMbER(b *testing.B) {
	benchFigure(b, "YAGO", workload.Star, 40, experiments.AMbER)
}
func BenchmarkFig8_Star_YAGO_Size40_PermStore(b *testing.B) {
	benchFigure(b, "YAGO", workload.Star, 40, experiments.PermStore)
}
func BenchmarkFig8_Star_YAGO_Size40_GraphMatch(b *testing.B) {
	benchFigure(b, "YAGO", workload.Star, 40, experiments.GraphMatch)
}

// Figure 9: complex-shaped queries on YAGO.
func BenchmarkFig9_Complex_YAGO_Size10_AMbER(b *testing.B) {
	benchFigure(b, "YAGO", workload.Complex, 10, experiments.AMbER)
}
func BenchmarkFig9_Complex_YAGO_Size10_PermStore(b *testing.B) {
	benchFigure(b, "YAGO", workload.Complex, 10, experiments.PermStore)
}
func BenchmarkFig9_Complex_YAGO_Size10_GraphMatch(b *testing.B) {
	benchFigure(b, "YAGO", workload.Complex, 10, experiments.GraphMatch)
}
func BenchmarkFig9_Complex_YAGO_Size40_AMbER(b *testing.B) {
	benchFigure(b, "YAGO", workload.Complex, 40, experiments.AMbER)
}
func BenchmarkFig9_Complex_YAGO_Size40_PermStore(b *testing.B) {
	benchFigure(b, "YAGO", workload.Complex, 40, experiments.PermStore)
}
func BenchmarkFig9_Complex_YAGO_Size40_GraphMatch(b *testing.B) {
	benchFigure(b, "YAGO", workload.Complex, 40, experiments.GraphMatch)
}

// Figure 10: star-shaped queries on LUBM.
func BenchmarkFig10_Star_LUBM_Size10_AMbER(b *testing.B) {
	benchFigure(b, "LUBM", workload.Star, 10, experiments.AMbER)
}
func BenchmarkFig10_Star_LUBM_Size10_PermStore(b *testing.B) {
	benchFigure(b, "LUBM", workload.Star, 10, experiments.PermStore)
}
func BenchmarkFig10_Star_LUBM_Size10_GraphMatch(b *testing.B) {
	benchFigure(b, "LUBM", workload.Star, 10, experiments.GraphMatch)
}
func BenchmarkFig10_Star_LUBM_Size40_AMbER(b *testing.B) {
	benchFigure(b, "LUBM", workload.Star, 40, experiments.AMbER)
}
func BenchmarkFig10_Star_LUBM_Size40_PermStore(b *testing.B) {
	benchFigure(b, "LUBM", workload.Star, 40, experiments.PermStore)
}
func BenchmarkFig10_Star_LUBM_Size40_GraphMatch(b *testing.B) {
	benchFigure(b, "LUBM", workload.Star, 40, experiments.GraphMatch)
}

// Figure 11: complex-shaped queries on LUBM.
func BenchmarkFig11_Complex_LUBM_Size10_AMbER(b *testing.B) {
	benchFigure(b, "LUBM", workload.Complex, 10, experiments.AMbER)
}
func BenchmarkFig11_Complex_LUBM_Size10_PermStore(b *testing.B) {
	benchFigure(b, "LUBM", workload.Complex, 10, experiments.PermStore)
}
func BenchmarkFig11_Complex_LUBM_Size10_GraphMatch(b *testing.B) {
	benchFigure(b, "LUBM", workload.Complex, 10, experiments.GraphMatch)
}
func BenchmarkFig11_Complex_LUBM_Size40_AMbER(b *testing.B) {
	benchFigure(b, "LUBM", workload.Complex, 40, experiments.AMbER)
}
func BenchmarkFig11_Complex_LUBM_Size40_PermStore(b *testing.B) {
	benchFigure(b, "LUBM", workload.Complex, 40, experiments.PermStore)
}
func BenchmarkFig11_Complex_LUBM_Size40_GraphMatch(b *testing.B) {
	benchFigure(b, "LUBM", workload.Complex, 40, experiments.GraphMatch)
}

// ---- Ablations ----------------------------------------------------------

// BenchmarkAblation_SIndexBulkLoad vs Insert: the two R-tree construction
// paths for the signature index.
func BenchmarkAblation_SIndexBulkLoad(b *testing.B) {
	g := dataset(b, "LUBM").Amber.Graph()
	n := g.NumVertices()
	points := make([]rtree.Point, n)
	ids := make([]uint32, n)
	for v := 0; v < n; v++ {
		points[v] = rtree.Point(g.VertexSynopsis(dict.VertexID(v)))
		ids[v] = uint32(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := rtree.BulkLoad(points, ids)
		if t.Len() != n {
			b.Fatal("bad tree")
		}
	}
}

func BenchmarkAblation_SIndexInsert(b *testing.B) {
	g := dataset(b, "LUBM").Amber.Graph()
	n := g.NumVertices()
	points := make([]rtree.Point, n)
	for v := 0; v < n; v++ {
		points[v] = rtree.Point(g.VertexSynopsis(dict.VertexID(v)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := rtree.New()
		for v := 0; v < n; v++ {
			t.Insert(points[v], uint32(v))
		}
		if t.Len() != n {
			b.Fatal("bad tree")
		}
	}
}

// BenchmarkAblation_OTIL compares the neighbourhood index's two lookup
// strategies: inverted-list intersection vs trie walk.
func buildAblationTrie() (*otil.Trie, [][]dict.EdgeType) {
	var tr otil.Trie
	var queries [][]dict.EdgeType
	for v := dict.VertexID(0); v < 3000; v++ {
		a := dict.EdgeType(v % 13)
		bt := dict.EdgeType((v * 7) % 13)
		if a == bt {
			bt = (bt + 1) % 13
		}
		if a > bt {
			a, bt = bt, a
		}
		tr.Insert([]dict.EdgeType{a, bt}, v)
		if v%100 == 0 {
			queries = append(queries, []dict.EdgeType{a, bt})
		}
	}
	tr.Finalize()
	return &tr, queries
}

func BenchmarkAblation_OTILInvertedList(b *testing.B) {
	tr, queries := buildAblationTrie()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tr.Lookup(queries[i%len(queries)]); len(got) == 0 {
			b.Fatal("empty lookup")
		}
	}
}

func BenchmarkAblation_OTILTrieWalk(b *testing.B) {
	tr, queries := buildAblationTrie()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tr.LookupTrie(queries[i%len(queries)]); len(got) == 0 {
			b.Fatal("empty lookup")
		}
	}
}

// BenchmarkAblation_CountVsStream isolates the satellite factorization: the
// same star query counted via Cartesian products vs fully enumerated.
//
// Generated queries can have astronomically many embeddings (a star's
// count is the product of its satellite candidate sets), so the helper
// selects one whose total count is bounded — enumeration must terminate.
func ablationBoundedQuery(b *testing.B, d *experiments.Dataset, kind workload.Kind, size int, maxCount uint64) *sparql.Query {
	b.Helper()
	for _, q := range d.Gen.Workload(kind, size, 25) {
		qg, err := d.Amber.Prepare(q)
		if err != nil {
			continue
		}
		n, err := d.Amber.Count(qg, engine.Options{Deadline: time.Now().Add(2 * time.Second)})
		if err == nil && n > 0 && n <= maxCount {
			return q
		}
	}
	b.Skip("no bounded query found at this scale")
	return nil
}

func BenchmarkAblation_FactorizedCount(b *testing.B) {
	d := dataset(b, "LUBM")
	q := ablationBoundedQuery(b, d, workload.Star, 8, 100_000)
	qg, err := d.Amber.Prepare(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Amber.Count(qg, engine.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_EnumeratedCount(b *testing.B) {
	d := dataset(b, "LUBM")
	q := ablationBoundedQuery(b, d, workload.Star, 8, 100_000)
	qg, err := d.Amber.Prepare(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := d.Amber.Stream(qg, engine.Options{}, func([]dict.VertexID) bool {
			n++
			return true
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_ParallelCount compares the serial counter with the
// worker-pool version (the paper's future-work parallel engine) on the
// same bounded complex query.
func benchParallel(b *testing.B, workers int) {
	d := dataset(b, "LUBM")
	q := ablationBoundedQuery(b, d, workload.Complex, 20, 10_000_000)
	qg, err := d.Amber.Prepare(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Amber.CountParallel(qg, engine.Options{}, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_CountSerial(b *testing.B)     { benchParallel(b, 1) }
func BenchmarkAblation_CountParallel4(b *testing.B)  { benchParallel(b, 4) }
func BenchmarkAblation_CountParallel16(b *testing.B) { benchParallel(b, 16) }

// BenchmarkAblation_SnapshotLoad compares loading a binary snapshot with
// re-parsing the N-Triples source (the offline stage's two entry points).
func BenchmarkAblation_SnapshotLoad(b *testing.B) {
	d := dataset(b, "LUBM")
	var buf bytes.Buffer
	if err := d.Amber.Save(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LoadStore(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_NTriplesLoad(b *testing.B) {
	d := dataset(b, "LUBM")
	var sb strings.Builder
	enc := rdf.NewEncoder(&sb)
	for _, t := range d.Triples {
		if err := enc.Encode(t); err != nil {
			b.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		b.Fatal(err)
	}
	src := sb.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewStoreFromReader(strings.NewReader(src)); err != nil {
			b.Fatal(err)
		}
	}
}

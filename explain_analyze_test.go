package amber

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/datagen"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// lubmDB loads a small deterministic LUBM corpus.
func lubmDB(t *testing.T) *DB {
	t.Helper()
	triples := datagen.LUBM(datagen.LUBMConfig{Universities: 1, Seed: 7, Compact: true})
	var b strings.Builder
	for _, tr := range triples {
		fmt.Fprintf(&b, "%s %s %s .\n", tr.S, tr.P, tr.O)
	}
	db, err := OpenString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExplainAnalyzeGolden pins the EXPLAIN ANALYZE report for a 3-pattern
// LUBM join: per-level estimated vs actual candidate frontiers, visit
// counts, engine effort and plan quality. Dataset, planner and engine are
// deterministic; only the `time:` line varies and is normalized away.
// Regenerate with `go test -run TestExplainAnalyzeGolden -update ./...`
// after an intentional planner or engine change.
func TestExplainAnalyzeGolden(t *testing.T) {
	db := lubmDB(t)
	const q = `SELECT ?student ?prof ?dept WHERE {
  ?prof <http://swat.cse.lehigh.edu/onto/univ-bench.owl#worksFor> ?dept .
  ?student <http://swat.cse.lehigh.edu/onto/univ-bench.owl#advisor> ?prof .
  ?student <http://swat.cse.lehigh.edu/onto/univ-bench.owl#memberOf> ?dept .
}`
	out, err := db.ExplainAnalyze(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := regexp.MustCompile(`(?m)^time: .*$`).ReplaceAllString(out, "time: <elided>")

	golden := filepath.Join("testdata", "explain_analyze_lubm.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN ANALYZE report drifted from golden.\n got:\n%s\nwant:\n%s", got, want)
	}

	// Structural checks independent of the exact numbers, so the intent
	// survives a legitimate -update.
	for _, frag := range []string{"shape=complex", "planner: cost", "est=", "actual=", "visits=", "rows: "} {
		if !strings.Contains(got, frag) {
			t.Errorf("report missing %q", frag)
		}
	}
}

func TestExplainAnalyzeReportsActualFrontiers(t *testing.T) {
	db := lubmDB(t)
	const q = `SELECT ?s ?c WHERE { ?s <http://swat.cse.lehigh.edu/onto/univ-bench.owl#takesCourse> ?c . }`
	out, err := db.ExplainAnalyze(q, &QueryOptions{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	// One core level per variable, each with an actual count; the limit
	// stops enumeration early, so rows is exactly 5.
	if !strings.Contains(out, "core[0]") || !strings.Contains(out, "rows: 5") {
		t.Errorf("unexpected report:\n%s", out)
	}

	// Unknown planner name errors rather than silently defaulting.
	if _, err := db.ExplainAnalyzeContext(t.Context(), q, "nonsense", nil); err == nil {
		t.Error("unknown planner accepted")
	}
}

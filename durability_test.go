package amber

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func durableInsert(t *testing.T, db *DB, i int) {
	t.Helper()
	u := fmt.Sprintf("INSERT DATA { <http://x/s%d> <http://x/p> <http://x/o%d> . }", i, i)
	if err := db.Update(u); err != nil {
		t.Fatalf("update %d: %v", i, err)
	}
}

func countAll(t *testing.T, db *DB) int {
	t.Helper()
	n, err := db.Count("SELECT ?s ?o WHERE { ?s <http://x/p> ?o . }", nil)
	if err != nil {
		t.Fatal(err)
	}
	return int(n)
}

// TestOpenDurableSurvivesCrash is the acceptance scenario: with
// fsync=always, every acknowledged update must survive a restart with no
// Save and no checkpoint — recovery comes from WAL replay alone. Close
// only releases the directory lock (the WAL holds an flock, so an
// abandoned in-process handle would block the reopen); the true
// SIGKILL-without-Close variant lives in internal/integration.
func TestOpenDurableSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir, nil) // nil options = fsync=always
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		durableInsert(t, db, i)
	}
	if got := countAll(t, db); got != n {
		t.Fatalf("pre-crash count %d, want %d", got, n)
	}
	// "Crash": nothing saved, nothing checkpointed; only the lock drops.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDurable(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Durability().Replayed != n {
		t.Fatalf("replayed %d records, want %d", re.Durability().Replayed, n)
	}
	if got := countAll(t, re); got != n {
		t.Fatalf("post-recovery count %d, want %d", got, n)
	}
	// Post-recovery state equals a from-scratch rebuild of the sequence.
	ref, err := OpenString("")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		durableInsert(t, ref, i)
	}
	if got, want := re.Stats(), ref.Stats(); got.Triples != want.Triples ||
		got.Vertices != want.Vertices || got.Edges != want.Edges {
		t.Fatalf("recovered stats %+v != rebuild stats %+v", got, want)
	}
}

func TestDurableCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDurable(dir, &DurabilityOptions{Fsync: "always", SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		durableInsert(t, db, i)
	}
	if segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg")); len(segs) < 2 {
		t.Fatalf("want multiple segments before checkpoint, got %v", segs)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Segments prior to the checkpoint are gone; only a fresh active one
	// remains.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("checkpoint left segments %v", segs)
	}
	st := db.Durability()
	if st.Checkpoints != 1 || st.WALBytes != 0 || st.CheckpointSeq != st.LastSeq {
		t.Fatalf("durability after checkpoint: %+v", st)
	}
	durableInsert(t, db, 100)
	want := countAll(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Update("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> . }"); err == nil {
		t.Fatal("update succeeded after Close")
	}

	// Reopen: loads the checkpoint snapshot, replays only the one record
	// logged after it.
	re, err := OpenDurable(dir, &DurabilityOptions{Fsync: "always", SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Durability().Replayed != 1 {
		t.Fatalf("replayed %d records, want 1", re.Durability().Replayed)
	}
	if got := countAll(t, re); got != want {
		t.Fatalf("post-checkpoint recovery count %d, want %d", got, want)
	}
}

func TestOpenDurableBootstrapSource(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(t.TempDir(), "seed.nt")
	if err := os.WriteFile(src, []byte("<http://x/s0> <http://x/p> <http://x/o0> .\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDurable(dir, &DurabilityOptions{SourcePath: src})
	if err != nil {
		t.Fatal(err)
	}
	if got := countAll(t, db); got != 1 {
		t.Fatalf("bootstrap count %d, want 1", got)
	}
	durableInsert(t, db, 1)
	db.Close()

	// Without a checkpoint the source stays the base: reopen re-reads it
	// and replays the logged update on top.
	re, err := OpenDurable(dir, &DurabilityOptions{SourcePath: src})
	if err != nil {
		t.Fatal(err)
	}
	if got := countAll(t, re); got != 2 {
		t.Fatalf("reopen count %d, want 2", got)
	}
	// After a checkpoint the snapshot supersedes the source.
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := OpenDurable(dir, &DurabilityOptions{SourcePath: src})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := countAll(t, re2); got != 2 {
		t.Fatalf("post-checkpoint reopen count %d, want 2", got)
	}
	if re2.Durability().Replayed != 0 {
		t.Fatalf("replayed %d, want 0 after checkpoint", re2.Durability().Replayed)
	}
}

func TestNonDurableNoOps(t *testing.T) {
	db, err := OpenString("<http://x/s> <http://x/p> <http://x/o> .")
	if err != nil {
		t.Fatal(err)
	}
	if db.Durability().Enabled {
		t.Fatal("in-memory DB reports durability enabled")
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Close without a WAL keeps the DB writable.
	if err := db.Update("INSERT DATA { <http://x/a> <http://x/p> <http://x/b> . }"); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint on in-memory DB succeeded")
	}
}

func TestOpenDurableBadFsync(t *testing.T) {
	if _, err := OpenDurable(t.TempDir(), &DurabilityOptions{Fsync: "sometimes"}); err == nil {
		t.Fatal("bad fsync policy accepted")
	}
}

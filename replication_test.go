package amber_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	amber "repro"
	"repro/internal/rdf"
	"repro/internal/wal"
)

func replRec(seq uint64, i int) wal.Record {
	return wal.Record{
		Seq:   seq,
		Epoch: seq,
		Kind:  wal.KindMutation,
		Adds: []rdf.Triple{{
			S: rdf.NewIRI(fmt.Sprintf("http://rt/s%d", i)),
			P: rdf.NewIRI("http://rt/p"),
			O: rdf.NewIRI(fmt.Sprintf("http://rt/o%d", i)),
		}},
	}
}

// TestApplyReplicated drives the follower write path directly: records
// carrying a primary's sequence numbers must land in the store, persist
// the foreign cursor, and survive a reopen through ordinary recovery.
func TestApplyReplicated(t *testing.T) {
	dir := t.TempDir()
	db, err := amber.OpenDurable(dir, &amber.DurabilityOptions{Fsync: "never"})
	if err != nil {
		t.Fatal(err)
	}
	// Sequences start above 1 and contain a gap — the local log must adopt
	// them verbatim rather than renumbering.
	if err := db.ApplyReplicated([]wal.Record{replRec(10, 0), replRec(11, 1)}); err != nil {
		t.Fatalf("ApplyReplicated: %v", err)
	}
	if err := db.ApplyReplicated([]wal.Record{replRec(20, 2)}); err != nil {
		t.Fatalf("ApplyReplicated 2: %v", err)
	}
	if got := db.Durability().LastSeq; got != 20 {
		t.Fatalf("LastSeq %d, want the primary's 20", got)
	}
	n, err := db.Count("SELECT ?s WHERE { ?s <http://rt/p> ?o . }", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("applied %d triples, want 3", n)
	}
	// Stale sequences are rejected and nothing is applied.
	if err := db.ApplyReplicated([]wal.Record{replRec(20, 3)}); err == nil {
		t.Fatal("ApplyReplicated accepted a stale sequence")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := amber.OpenDurable(dir, &amber.DurabilityOptions{Fsync: "never"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := re.Durability().LastSeq; got != 20 {
		t.Fatalf("recovered LastSeq %d, want 20", got)
	}
	n, err = re.Count("SELECT ?s WHERE { ?s <http://rt/p> ?o . }", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("recovered %d triples, want 3", n)
	}
}

// TestReplicationOnMemoryDatabase pins the in-memory contract: applying
// replicated records works (a memory-only replica is valid), but there
// is no WAL to serve and no snapshot cursor to capture.
func TestReplicationOnMemoryDatabase(t *testing.T) {
	db, err := amber.OpenString("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.WAL() != nil {
		t.Fatal("in-memory database reports a WAL")
	}
	if err := db.ApplyReplicated([]wal.Record{replRec(1, 0)}); err != nil {
		t.Fatalf("in-memory ApplyReplicated: %v", err)
	}
	n, err := db.Count("SELECT ?s WHERE { ?s <http://rt/p> ?o . }", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("in-memory replica has %d triples, want 1", n)
	}
	if _, _, err := db.SaveReplica(&strings.Builder{}); !errors.Is(err, amber.ErrNotDurable) {
		t.Fatalf("SaveReplica error = %v, want ErrNotDurable", err)
	}
}

// Package amber is AMbER — an Attributed Multigraph Based Engine for RDF
// querying, a from-scratch Go reproduction of the system described in
// "Querying RDF Data Using A Multigraph-based Approach" (EDBT 2016).
//
// AMbER answers SPARQL SELECT/WHERE queries by representing the RDF data
// as a directed, vertex-attributed multigraph, indexing it offline with
// three structures (an attribute inverted index, an R-tree of vertex
// signature synopses, and per-vertex neighbourhood tries), and reducing
// query answering to sub-multigraph homomorphism search.
//
// Typical use:
//
//	db, err := amber.OpenFile("data.nt")
//	...
//	rows, err := db.Query(`SELECT ?who WHERE { ?who <http://y/livedIn> <http://x/US> . }`, nil)
//
// The WHERE clause supports basic graph patterns (with PREFIX, `a` and
// `;`/`,` abbreviations), plus the extension fragment the paper lists as
// future work: ASK, DISTINCT, UNION, a FILTER subset (=, !=, regex
// substring, strstarts), LIMIT and OFFSET. OPTIONAL and GROUP BY remain
// out of scope.
//
// Results are typed: bindings are Terms (IRI, blank node, or literal
// with datatype and language tag), surfaced through the context-aware
// cursor API (QueryContext/Rows), the range-over-func form (All), or the
// legacy flattened Row maps. Single-occurrence object variables may bind
// literals (`SELECT ?name WHERE { ?x <…/name> ?name }`); variables that
// join across patterns bind graph vertices, as in the paper.
package amber

import (
	"context"
	"errors"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// ErrTimeout is returned when a query exceeds QueryOptions.Timeout (or a
// context deadline during a ctx-aware execution).
var ErrTimeout = errors.New("amber: query timeout exceeded")

// mapExecErr normalizes engine abort errors to the public surface:
// deadline expiry becomes ErrTimeout, a caller's cancellation stays
// context.Canceled, everything else passes through.
func mapExecErr(err error) error {
	if err == engine.ErrDeadlineExceeded || errors.Is(err, context.DeadlineExceeded) {
		return ErrTimeout
	}
	return err
}

// DB is an AMbER database: the data multigraph plus its index ensemble,
// and — since the live-update subsystem — a mutation path. Open one with
// Open, OpenFile or OpenString. Reads are lock-free MVCC: every query
// pins an immutable snapshot, so a DB is safe for any mix of concurrent
// readers and writers (Update/Mutate), and no query ever observes a
// partially applied update.
type DB struct {
	store    *core.Store
	prefixes *rdf.PrefixMap
}

// WithPrefixes returns a handle sharing this database but with the given
// prefixes pre-bound for every query, so query texts may use prefixed
// names without repeating PREFIX declarations. Declarations inside a
// query override the defaults. The original handle is unaffected.
func (db *DB) WithPrefixes(prefixes map[string]string) *DB {
	pm := &rdf.PrefixMap{}
	if db.prefixes != nil {
		pm = db.prefixes.Clone()
	}
	for p, ns := range prefixes {
		pm.Set(p, ns)
	}
	return &DB{store: db.store, prefixes: pm}
}

// parse parses query text with the handle's default prefixes.
func (db *DB) parse(src string) (*sparql.Query, error) {
	return sparql.ParseWith(src, db.prefixes)
}

// Open loads RDF data (N-Triples, with @prefix/PREFIX directives and
// prefixed names allowed) from r and builds the offline structures.
func Open(r io.Reader) (*DB, error) {
	st, err := core.NewStoreFromReader(r)
	if err != nil {
		return nil, err
	}
	return &DB{store: st}, nil
}

// OpenFile loads RDF data from a file.
func OpenFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Open(f)
}

// OpenString loads RDF data held in a string.
func OpenString(data string) (*DB, error) {
	return Open(strings.NewReader(data))
}

// QueryOptions tune query execution. The zero value (or a nil pointer)
// means no limit and no timeout.
type QueryOptions struct {
	// Limit caps the number of result rows (0 = all). A LIMIT clause in
	// the query text also applies; the tighter bound wins.
	Limit int
	// Timeout bounds execution; exceeding it returns ErrTimeout. The
	// paper's experiments use 60 s.
	Timeout time.Duration
}

// engineOptions converts the options to engine form, tightening the
// engine limit with the query's own LIMIT clause (the tighter bound
// wins). It captures the timeout deadline from the moment it is called,
// so call it at execution start — after parsing and preparation — to
// keep parse cost from eating the query's time budget. ctx, when
// non-nil, is polled by the engine alongside the deadline, so callers
// can cancel in-flight work; Timeout remains a plain deadline, so the
// two compose (the tighter bound aborts first).
func (o *QueryOptions) engineOptions(ctx context.Context, queryLimit int) engine.Options {
	var e engine.Options
	e.Ctx = ctx
	if o != nil {
		e.Limit = o.Limit
		if o.Timeout != 0 {
			// A negative timeout yields an already-expired deadline, which the
			// engine reports as a timeout — useful for tests and dry runs.
			e.Deadline = time.Now().Add(o.Timeout)
		}
	}
	if queryLimit > 0 && (e.Limit == 0 || queryLimit < e.Limit) {
		e.Limit = queryLimit
	}
	return e
}

// Row is one solution in the legacy flattened form: projected variable
// name → the bound term's text (an IRI, a blank label, or a literal's
// lexical form — the datatype and language tag are dropped). A variable
// that is unbound in the matched UNION branch maps to the empty string.
//
// Deprecated-ish: new code should use the typed Binding surface
// (QueryContext, Prepared.All, Rows), which keeps literals typed and
// distinguishes unbound from empty. Row remains supported as a thin
// wrapper over it.
type Row map[string]string

// Query runs a SPARQL SELECT query and materializes the result rows.
func (db *DB) Query(sparqlText string, opts *QueryOptions) ([]Row, error) {
	var rows []Row
	err := db.QueryIter(sparqlText, opts, func(r Row) bool {
		rows = append(rows, r)
		return true
	})
	return rows, err
}

// QueryIter streams result rows to fn, stopping early when fn returns
// false. Each Row is freshly allocated and may be retained. A projected
// variable that is unbound in a UNION branch maps to the empty string;
// see Row for what typed literals flatten to.
func (db *DB) QueryIter(sparqlText string, opts *QueryOptions, fn func(Row) bool) error {
	p, err := db.Prepare(sparqlText)
	if err != nil {
		return err
	}
	return p.QueryIter(opts, fn)
}

// Count returns the number of solutions without materializing them. For
// queries in the paper's core fragment (single BGP, no DISTINCT, FILTER
// or OFFSET) the count factorizes over satellite vertices and is far
// cheaper than Query; extension queries fall back to enumeration.
func (db *DB) Count(sparqlText string, opts *QueryOptions) (uint64, error) {
	p, err := db.Prepare(sparqlText)
	if err != nil {
		return 0, err
	}
	return p.Count(opts)
}

// CountParallel counts solutions using a pool of worker goroutines — the
// parallel processing extension the paper's conclusion sketches. It
// applies to queries in the core fragment; extension queries (DISTINCT,
// FILTER, UNION, OFFSET) fall back to the sequential path.
func (db *DB) CountParallel(sparqlText string, opts *QueryOptions, workers int) (uint64, error) {
	p, err := db.Prepare(sparqlText)
	if err != nil {
		return 0, err
	}
	return p.CountParallel(opts, workers)
}

// Prepared is a query parsed and translated once against a DB, ready to
// execute many times. Preparation covers SPARQL parsing, query-multigraph
// construction for every UNION branch, and FILTER compilation — the hot
// path of repeated execution (a server's cached plan, a benchmark's inner
// loop) skips all of it. A Prepared is tied to the DB that produced it
// and, like the DB, is safe for concurrent use.
type Prepared struct {
	db    *DB
	cp    *core.PreparedQuery
	shape *bindingShape // projection names + index, shared by every row
}

// Prepare parses and prepares a SPARQL SELECT or ASK query for repeated
// execution with varying options.
func (db *DB) Prepare(sparqlText string) (*Prepared, error) {
	pq, err := db.parse(sparqlText)
	if err != nil {
		return nil, err
	}
	cp, err := db.store.PrepareQuery(pq)
	if err != nil {
		return nil, err
	}
	return &Prepared{db: db, cp: cp, shape: newBindingShape(cp.Projection())}, nil
}

// Projection returns the projected variable names, in SELECT order
// (without '?').
func (p *Prepared) Projection() []string {
	return append([]string(nil), p.cp.Projection()...)
}

// Shape returns the query-shape class of the first branch's current plan
// ("star", "chain", "cyclic", ...), for observability labels. Live
// updates may re-plan, so successive calls can differ.
func (p *Prepared) Shape() string { return p.cp.Shape() }

// Query executes the prepared query and materializes the result rows.
func (p *Prepared) Query(opts *QueryOptions) ([]Row, error) {
	var rows []Row
	err := p.QueryIter(opts, func(r Row) bool {
		rows = append(rows, r)
		return true
	})
	return rows, err
}

// QueryIter executes the prepared query, streaming rows to fn; see
// DB.QueryIter for semantics.
func (p *Prepared) QueryIter(opts *QueryOptions, fn func(Row) bool) error {
	proj := p.shape.vars
	err := p.cp.Execute(opts.engineOptions(nil, 0), func(sol core.Solution) bool {
		row := make(Row, len(proj))
		for _, name := range proj {
			row[name] = sol[name].Value // zero Term → "" when unbound
		}
		return fn(row)
	})
	return mapExecErr(err)
}

// Count counts solutions of the prepared query; see DB.Count.
func (p *Prepared) Count(opts *QueryOptions) (uint64, error) {
	if p.cp.Plain() {
		n, err := p.cp.CountPlan(opts.engineOptions(nil, p.cp.Query().Limit))
		return n, mapExecErr(err)
	}
	var n uint64
	err := p.cp.Execute(opts.engineOptions(nil, 0), func(core.Solution) bool {
		n++
		return true
	})
	return n, mapExecErr(err)
}

// CountParallel counts solutions with a worker pool; see DB.CountParallel.
func (p *Prepared) CountParallel(opts *QueryOptions, workers int) (uint64, error) {
	if !p.cp.Plain() {
		return p.Count(opts)
	}
	n, err := p.cp.CountPlanParallel(opts.engineOptions(nil, p.cp.Query().Limit), workers)
	return n, mapExecErr(err)
}

# Single source of truth for tool versions: CI calls these targets, so
# local runs and the merge gate use identical checker versions.
STATICCHECK_VERSION = 2025.1
GOVULNCHECK_VERSION = v1.1.3

GO ?= go
BIN := bin

.PHONY: all build test vet lint vuln bench check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# vet = stock go vet + the amber-vet invariant suite (see README,
# "Static analysis"). amber-vet runs twice on purpose: through go vet
# for per-package diagnostics with build caching, and standalone for the
# cross-package rules (duplicate metric names across packages) that a
# per-unit run cannot see.
vet: $(BIN)/amber-vet
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath $(BIN)/amber-vet) ./...
	$(BIN)/amber-vet ./...

$(BIN)/amber-vet: FORCE
	$(GO) build -o $(BIN)/amber-vet ./cmd/amber-vet

FORCE:

# Network-dependent tools, version-pinned above. `go run pkg@version`
# keeps them out of go.mod (this module is dependency-free) while still
# giving reproducible checker versions.
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

bench:
	$(GO) run ./cmd/amber-bench -json -quick

check: build vet test

clean:
	rm -rf $(BIN)
